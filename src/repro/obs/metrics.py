"""Hardware-counter style metrics: counters, gauges, histograms.

A :class:`MetricsRegistry` holds labeled metrics the way a PMU or a
Prometheus endpoint would: ``registry.counter("llc_bytes_missed",
llc="0")`` returns the counter for that label set, creating it on first
use.  The collectors at the bottom scrape a finished (or running)
:class:`~repro.machine.machine.SimMachine` and
:class:`~repro.concurrent.simexec.SimExecutorService` into a registry —
per-LLC cache hits/misses, per-socket DRAM traffic, per-thread
migrations and scheduler decisions, per-worker task counts, and task
span histograms.  Scraping reads model state that the simulation
already maintains, so metrics collection has zero observer effect.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

LabelsKey = Tuple[Tuple[str, str], ...]


def _labels_key(labels: Dict[str, object]) -> LabelsKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing value (events, bytes, decisions)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelsKey):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter decrement: {amount}")
        # coerce so numpy scalars from model state stay JSON-serializable
        self.value += float(amount)


class Gauge:
    """A point-in-time value (queue depth, hit ratio, busy seconds)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelsKey):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge's current value."""
        self.value = float(value)


class Histogram:
    """Fixed-bucket histogram with sum/count (latency distributions).

    ``buckets`` are upper bounds in ascending order; an implicit +inf
    bucket catches the tail.  ``observe`` is O(#buckets).
    """

    __slots__ = ("name", "labels", "buckets", "counts", "sum", "count")

    DEFAULT_BUCKETS = (
        1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1,
    )

    def __init__(
        self,
        name: str,
        labels: LabelsKey,
        buckets: Optional[Sequence[float]] = None,
    ):
        bounds = tuple(buckets) if buckets is not None else self.DEFAULT_BUCKETS
        if list(bounds) != sorted(bounds):
            raise ValueError(f"histogram buckets must ascend: {bounds}")
        self.name = name
        self.labels = labels
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # last = +inf overflow
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.sum += float(value)
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        """Mean of all observed samples (0 if none)."""
        return self.sum / self.count if self.count else 0.0


class MetricsRegistry:
    """Labeled metric store with get-or-create accessors.

    A metric is identified by ``(name, labels)``; asking twice returns
    the same object.  Registering the same name with two different
    metric types is an error.
    """

    def __init__(self):
        self._metrics: Dict[Tuple[str, LabelsKey], object] = {}
        self._types: Dict[str, type] = {}

    def _get(self, cls, name: str, labels: Dict[str, object], **kwargs):
        seen = self._types.get(name)
        if seen is not None and seen is not cls:
            raise ValueError(
                f"metric {name!r} already registered as {seen.__name__}"
            )
        self._types[name] = cls
        key = (name, _labels_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics[key] = cls(name, key[1], **kwargs)
        return metric

    def counter(self, name: str, **labels) -> Counter:
        """Get or create the counter with this name and label set."""
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        """Get or create the gauge with this name and label set."""
        return self._get(Gauge, name, labels)

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None, **labels
    ) -> Histogram:
        """Get or create the histogram with this name and label set."""
        return self._get(Histogram, name, labels, buckets=buckets)

    def __len__(self) -> int:
        return len(self._metrics)

    def rows(self) -> List[dict]:
        """Flat, deterministically ordered dump of every metric.

        Counters/gauges yield one row; histograms yield one row per
        bucket plus ``_sum`` and ``_count`` rows — the flat form both
        exporters (CSV and JSON) serialize directly.
        """
        out: List[dict] = []
        for (name, labels), metric in sorted(
            self._metrics.items(), key=lambda kv: kv[0]
        ):
            label_str = ",".join(f"{k}={v}" for k, v in labels)
            if isinstance(metric, (Counter, Gauge)):
                kind = "counter" if isinstance(metric, Counter) else "gauge"
                out.append(
                    {
                        "name": name,
                        "labels": label_str,
                        "type": kind,
                        "value": metric.value,
                    }
                )
            else:
                for bound, count in zip(metric.buckets, metric.counts):
                    out.append(
                        {
                            "name": f"{name}_bucket",
                            "labels": (
                                f"{label_str},le={bound:g}"
                                if label_str else f"le={bound:g}"
                            ),
                            "type": "histogram",
                            "value": count,
                        }
                    )
                inf_labels = (
                    f"{label_str},le=+inf" if label_str else "le=+inf"
                )
                out.append(
                    {
                        "name": f"{name}_bucket",
                        "labels": inf_labels,
                        "type": "histogram",
                        "value": metric.counts[-1],
                    }
                )
                out.append(
                    {
                        "name": f"{name}_sum",
                        "labels": label_str,
                        "type": "histogram",
                        "value": metric.sum,
                    }
                )
                out.append(
                    {
                        "name": f"{name}_count",
                        "labels": label_str,
                        "type": "histogram",
                        "value": metric.count,
                    }
                )
        return out


# -- collectors -----------------------------------------------------------


def collect_machine_metrics(
    machine, registry: Optional[MetricsRegistry] = None
) -> MetricsRegistry:
    """Scrape a :class:`SimMachine` into hardware-counter metrics.

    Emits per-LLC ``llc_bytes_hit`` / ``llc_bytes_missed`` counters and
    ``llc_hit_ratio`` gauges, per-socket DRAM traffic, per-thread
    migration/dispatch counters and CPU-time gauges, scheduler decision
    counts by kind, and the simulator's clock/event totals.
    """
    reg = registry if registry is not None else MetricsRegistry()
    for llc in machine.llc_states:
        labels = {"llc": llc.llc_id}
        reg.counter("llc_bytes_hit", **labels).inc(llc.bytes_hit)
        reg.counter("llc_bytes_missed", **labels).inc(llc.bytes_missed)
        total = llc.bytes_hit + llc.bytes_missed
        reg.gauge("llc_hit_ratio", **labels).set(
            llc.bytes_hit / total if total else 0.0
        )
    for socket, stats in sorted(machine.memory.stats().items()):
        labels = {"socket": socket}
        reg.counter("mem_bytes_served", **labels).inc(stats["bytes_served"])
        reg.counter("mem_bytes_remote", **labels).inc(stats["bytes_remote"])
        reg.gauge("mem_peak_streams", **labels).set(stats["peak_active"])
    trace = machine.scheduler.trace
    for thread in sorted(trace.migrations):
        reg.counter("sched_migrations", thread=thread).inc(
            trace.migrations[thread]
        )
    for thread in sorted(trace.dispatches):
        reg.counter("sched_dispatches", thread=thread).inc(
            trace.dispatches[thread]
        )
    decision_counts: Dict[str, int] = {}
    for _time, _thread, _pu, what in trace.events:
        kind = what.partition(":")[0]
        decision_counts[kind] = decision_counts.get(kind, 0) + 1
    for kind in sorted(decision_counts):
        reg.counter("sched_decisions", kind=kind).inc(decision_counts[kind])
    for thread in machine.threads:
        reg.gauge("thread_cpu_seconds", thread=thread.name).set(
            thread.cpu_time
        )
        reg.counter("thread_bursts", thread=thread.name).inc(
            thread.burst_count
        )
    reg.gauge("sim_seconds").set(machine.now)
    reg.counter("sim_events").inc(machine.sim.event_count)
    return reg


def collect_executor_metrics(
    pool, registry: Optional[MetricsRegistry] = None
) -> MetricsRegistry:
    """Scrape a :class:`SimExecutorService`: per-worker task counts and
    busy time, plus per-queue put/get/depth statistics."""
    reg = registry if registry is not None else MetricsRegistry()
    for i in range(pool.n_threads):
        labels = {"pool": pool.name, "worker": i}
        reg.counter("tasks_executed", **labels).inc(pool.tasks_executed[i])
        reg.gauge("worker_busy_seconds", **labels).set(pool.busy_time[i])
    for q in pool.queues:
        labels = {"queue": q.name}
        reg.counter("queue_puts", **labels).inc(q.put_count)
        reg.counter("queue_gets", **labels).inc(q.get_count)
        reg.gauge("queue_max_depth", **labels).set(q.max_depth)
    return reg


def collect_span_metrics(
    spans: Iterable,
    registry: Optional[MetricsRegistry] = None,
) -> MetricsRegistry:
    """Fold task spans into per-label execution and queue-wait
    histograms (``task_exec_seconds`` / ``task_queue_wait_seconds``)."""
    reg = registry if registry is not None else MetricsRegistry()
    for span in spans:
        if not span.complete:
            continue
        label = span.label or "task"
        reg.histogram("task_exec_seconds", label=label).observe(
            span.exec_time
        )
        reg.histogram("task_queue_wait_seconds", label=label).observe(
            span.queue_wait
        )
    return reg
