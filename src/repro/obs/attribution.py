"""Speedup-loss attribution: *why* doesn't a workload scale?

PR 1's tracer records what happened; this module explains it.  For one
workload × thread count it decomposes the gap between *ideal* speedup
(T₁/N) and *achieved* runtime into named, conserved buckets, following
the work-inflation vs idle-time decomposition of Acar, Charguéraud &
Rainey (arXiv:1709.03767) and LAMMPS-style per-phase breakdowns:

* **work_inflation** — extra on-core seconds the same work costs at N
  threads (cache misses, migrations, DRAM contention, SMT slowdown);
* **latch_idle** — workers parked at the phase latch while stragglers
  finish (the paper's §IV load imbalance);
* **queue_wait** — tasks enqueued but no worker picking them up;
* **sched_overhead** — ready-but-not-running time, the contended
  queue-pop critical section, and the master's serial display/dispatch
  sections that leave every worker idle (the Amdahl fraction);
* **steal_overhead** — on-core seconds spent probing victim deques
  under ``QueueMode.STEALING`` (the toll work-stealing pays to convert
  latch_idle back into useful work); zero for the fixed-queue pools;
* **gc** — stop-the-world collections injected by the GC model;
* **fault_loss** — time lost to injected faults (crashed workers' dead
  tails, straggler-core slowdown, preemption storms, lock stalls,
  amplified GC pauses); zero unless a fault plan is armed.

The accounting is exact by construction: every instant of every
worker's [0, T] is classified into exactly one class, so

    achieved − ideal  ==  Σ buckets      (to float round-off)

which ``tests/obs/test_attribution.py`` asserts as a property and
``scripts/check_bench.py`` re-validates on every benchmark dump.

Within the forces phase, work inflation is further attributed to the
individual force kernels (LJ / Coulomb / bonded / fused rebuild) by
their modeled cost shares — this is what names the LJ kernel as the
reason Al-1000 stops scaling (§V of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.costmodel import DEFAULT_COST_PARAMS, CostParams
from repro.core.simulate import RunResult, SimulatedParallelRun, capture_trace
from repro.machine.machine import SimMachine
from repro.machine.topology import CORE_I7_920, MachineSpec
from repro.obs.critical_path import CriticalPath, critical_path
from repro.obs.tracer import PhaseWindow, Tracer
from repro.perftools.sampling import GroundTruthTimeline, ThreadState
from repro.workloads import BUILDERS, resolve_workload

Interval = Tuple[float, float]

#: pseudo-phase for time outside every phase window (master serial
#: sections, GC pauses at step boundaries, startup/shutdown slack)
SERIAL_PHASE = "serial"

#: fine-grained per-instant classes (each worker instant gets exactly one)
CLASSES = (
    "exec",           # on-core inside a task span
    "pool_overhead",  # on-core outside spans: queue-pop lock, ctx switch
    "steal",          # on-core probing victim deques (STEALING pools)
    "ready",          # runnable, waiting for a PU
    "fault",          # time lost to an injected fault (chaos runs)
    "gc",             # parked during a stop-the-world collection
    "serial_master",  # parked while the master runs (display/dispatch)
    "queue_wait",     # parked while its next task sits in the queue
    "latch_idle",     # parked at the phase latch (stragglers running)
)

#: class → displayed bucket (the report's columns)
CLASS_TO_BUCKET = {
    "exec": "work_inflation",
    "pool_overhead": "sched_overhead",
    "steal": "steal_overhead",
    "ready": "sched_overhead",
    "serial_master": "sched_overhead",
    "queue_wait": "queue_wait",
    "latch_idle": "latch_idle",
    "gc": "gc",
    "fault": "fault_loss",
}

BUCKETS = (
    "work_inflation", "latch_idle", "queue_wait",
    "sched_overhead", "steal_overhead", "gc", "fault_loss",
)

#: rough core cycles one byte of DRAM-bandwidth traffic costs — used
#: only to weigh flop-heavy vs byte-heavy kernels against each other
#: when splitting the forces phase per kernel (≈2.66 GHz / 8 GB/s)
_CYCLES_PER_BYTE = 0.33


# -- interval arithmetic ----------------------------------------------------
# All helpers operate on sorted, disjoint, half-open (start, end) lists.


def merge_intervals(
    ivs: Sequence[Interval], lo: float, hi: float
) -> List[Interval]:
    """Clip to [lo, hi], drop empties, sort, and coalesce overlaps."""
    clipped = sorted(
        (max(s, lo), min(e, hi)) for s, e in ivs if min(e, hi) > max(s, lo)
    )
    out: List[Interval] = []
    for s, e in clipped:
        if out and s <= out[-1][1]:
            if e > out[-1][1]:
                out[-1] = (out[-1][0], e)
        else:
            out.append((s, e))
    return out


def intersect_intervals(
    a: Sequence[Interval], b: Sequence[Interval]
) -> List[Interval]:
    """Pairwise intersection of two merged interval lists."""
    out: List[Interval] = []
    i = j = 0
    while i < len(a) and j < len(b):
        s = max(a[i][0], b[j][0])
        e = min(a[i][1], b[j][1])
        if e > s:
            out.append((s, e))
        if a[i][1] < b[j][1]:
            i += 1
        else:
            j += 1
    return out


def complement_intervals(
    ivs: Sequence[Interval], lo: float, hi: float
) -> List[Interval]:
    """[lo, hi] minus a merged interval list."""
    out: List[Interval] = []
    cur = lo
    for s, e in ivs:
        if s > cur:
            out.append((cur, s))
        cur = max(cur, e)
    if hi > cur:
        out.append((cur, hi))
    return out


def subtract_intervals(
    a: Sequence[Interval], b: Sequence[Interval], lo: float, hi: float
) -> List[Interval]:
    """a minus b (both merged, within [lo, hi])."""
    return intersect_intervals(a, complement_intervals(b, lo, hi))


def interval_seconds(ivs: Sequence[Interval]) -> float:
    """Total covered seconds of a merged interval list."""
    return sum(e - s for s, e in ivs)


# -- one observed run -------------------------------------------------------


@dataclass
class RunObservation:
    """Everything the attribution math needs from one traced replay."""

    workload: str
    n_threads: int
    steps: int
    sim_seconds: float
    #: class → phase → total worker-seconds (Σ over classes and phases
    #: == n_threads × sim_seconds, exactly)
    class_phase_seconds: Dict[str, Dict[str, float]]
    #: per completed phase window: (window, [(task uid, on-core s)])
    window_exec: List[Tuple[PhaseWindow, List[Tuple[str, float]]]]
    #: merged master-on-core ∪ GC-pause intervals (the serial spine)
    serial_intervals: List[Interval]
    gc_seconds: float
    result: RunResult = field(repr=False, default=None)

    def class_totals(self) -> Dict[str, float]:
        """Worker-seconds per class, summed over phases."""
        return {
            cls: sum(by_phase.values())
            for cls, by_phase in self.class_phase_seconds.items()
        }

    def phases(self) -> List[str]:
        """Phase names seen, execution order first, serial last."""
        order: List[str] = []
        for w, _tasks in self.window_exec:
            if w.name not in order:
                order.append(w.name)
        order.append(SERIAL_PHASE)
        return order


def observe_run(
    trace,
    n_atoms: int,
    spec: MachineSpec,
    n_threads: int,
    *,
    seed: int = 0,
    name: str = "wl",
    workload: str = "wl",
    **run_kwargs,
) -> RunObservation:
    """Replay a captured physics trace under the tracer and classify
    every worker instant.

    The classification is a partition: running time splits into task
    execution vs pool overhead, and parked time is attributed — in
    priority order — to fault windows (a crashed worker's dead tail,
    lock stalls), GC pauses, serial master sections, queue wait, and
    finally latch idle.  When a fault plan rides in via ``run_kwargs``,
    straggler slowdown is moved from exec to fault ((1−factor) of the
    on-core time inside the slowed window), storm-time ready goes to
    fault, and the amplified share of each GC pause goes to fault — so
    the partition stays exact and the bucket deltas still telescope.
    """
    machine = SimMachine(spec, seed=seed)
    tracer = Tracer().attach(machine.sim)
    run = SimulatedParallelRun(
        trace, n_atoms, machine, n_threads, name=name, **run_kwargs
    )
    result = run.run()
    tracer.detach()
    T = result.sim_seconds
    spans = [s for s in tracer.task_spans() if s.complete]
    windows = [w for w in tracer.phase_windows() if w.complete]
    timeline = GroundTruthTimeline(machine.scheduler.trace.events)

    def state_ivs(thread: str, state: ThreadState) -> List[Interval]:
        return merge_intervals(
            [
                (iv.start, iv.end)
                for iv in timeline.intervals.get(thread, [])
                if iv.state == state
            ],
            0.0,
            T,
        )

    def running_by_pu(thread: str) -> Dict[int, List[Interval]]:
        by: Dict[int, List[Interval]] = {}
        for iv in timeline.intervals.get(thread, []):
            if iv.state == ThreadState.RUNNING and iv.pu is not None:
                by.setdefault(iv.pu, []).append((iv.start, iv.end))
        return {
            pu: merge_intervals(l, 0.0, T) for pu, l in by.items()
        }

    master_running = state_ivs("master", ThreadState.RUNNING)
    gc_ivs = merge_intervals(result.gc_windows, 0.0, T)
    serial_spine = merge_intervals(master_running + gc_ivs, 0.0, T)

    # -- fault context (empty unless a fault plan was armed) -------------
    fault_windows = result.fault_windows
    slow_windows = [
        (w.detail["pu"], w.detail["factor"], w.start, w.end)
        for w in fault_windows
        if w.kind == "straggler"
    ]
    storm_ivs = merge_intervals(
        [(w.start, w.end) for w in fault_windows if w.kind == "preempt_storm"],
        0.0, T,
    )
    stall_ivs = merge_intervals(
        [(w.start, w.end) for w in fault_windows if w.kind == "lock_stall"],
        0.0, T,
    )
    death_time: Dict[int, float] = {}
    loss_start: Dict[str, float] = {}
    loss_ivs: List[Interval] = []
    steal_open: Dict[str, float] = {}
    steal_windows: Dict[str, List[Interval]] = {}
    for e in tracer.events:
        if e.kind == "worker.death":
            death_time[int(e.subject.rsplit("-", 1)[1])] = e.time
        elif e.kind == "fault.inject" and e.subject == "task_loss":
            uid = e.arg("uid", "")
            if uid:
                loss_start[uid] = e.time
        elif e.kind == "task.reissue":
            t_lost = loss_start.pop(e.subject, None)
            if t_lost is not None:
                # the pool idled on the vanished task until the watchdog
                # re-issued it: that whole window is the fault's doing
                loss_ivs.append((t_lost, e.time))
        elif e.kind == "steal.attempt":
            steal_open[e.subject] = e.time
        elif e.kind in ("steal.success", "steal.miss"):
            t0 = steal_open.pop(e.subject, None)
            if t0 is not None:
                steal_windows.setdefault(e.subject, []).append(
                    (t0, e.time)
                )
    # a worker interrupted mid-probe leaves its attempt open; its
    # on-core tail up to the crash was still steal work
    for subject, t0 in steal_open.items():
        steal_windows.setdefault(subject, []).append((t0, T))
    loss_ivs.extend((t, T) for t in loss_start.values())
    loss_ivs = merge_intervals(loss_ivs, 0.0, T)
    gc_mult = (
        run.injector.active.gc_multiplier
        if run.injector is not None
        else 1.0
    )

    #: phase name → merged wall intervals of its windows
    phase_ivs: Dict[str, List[Interval]] = {}
    for w in windows:
        phase_ivs.setdefault(w.name, []).append((w.begin, w.end))
    phase_ivs = {
        name_: merge_intervals(ivs, 0.0, T)
        for name_, ivs in phase_ivs.items()
    }

    acc: Dict[str, Dict[str, float]] = {
        cls: {SERIAL_PHASE: 0.0} for cls in CLASSES
    }

    def attribute_phase(
        cls: str, ivs: List[Interval], scale: float = 1.0
    ) -> None:
        # scale moves fractional seconds between classes (straggler and
        # GC-amplification compensation use a +s / −s pair, so the
        # per-worker partition of [0, T] stays exact)
        remaining = interval_seconds(ivs)
        for pname, pivs in phase_ivs.items():
            t = interval_seconds(intersect_intervals(ivs, pivs))
            if t:
                acc[cls][pname] = acc[cls].get(pname, 0.0) + scale * t
            remaining -= t
        acc[cls][SERIAL_PHASE] += scale * remaining

    exec_by_uid: Dict[str, float] = {}
    worker_names = [
        f"{run.pool.name}-worker-{i}" for i in range(n_threads)
    ]
    for i, wname in enumerate(worker_names):
        running = state_ivs(wname, ThreadState.RUNNING)
        ready = state_ivs(wname, ThreadState.READY)
        # anything not recorded as on-core or runnable is parked
        parked = complement_intervals(
            merge_intervals(running + ready, 0.0, T), 0.0, T
        )
        my_spans = [s for s in spans if s.worker == i]
        span_ivs = merge_intervals(
            [(s.started, s.finished) for s in my_spans], 0.0, T
        )
        queue_ivs = merge_intervals(
            [(s.enqueued, s.dequeued) for s in my_spans], 0.0, T
        )
        exec_run = intersect_intervals(running, span_ivs)
        attribute_phase("exec", exec_run)
        if slow_windows:
            on_pu = running_by_pu(wname)
            for pu, factor, s0, s1 in slow_windows:
                slow_exec = intersect_intervals(
                    intersect_intervals(exec_run, on_pu.get(pu, [])),
                    [(s0, s1)],
                )
                if slow_exec:
                    # of the on-core seconds inside the slowed window,
                    # (1−factor) is fault loss, factor is honest work
                    attribute_phase("fault", slow_exec, scale=1.0 - factor)
                    attribute_phase("exec", slow_exec, scale=factor - 1.0)
        off_span = subtract_intervals(running, span_ivs, 0.0, T)
        steal_ivs = merge_intervals(steal_windows.get(wname, []), 0.0, T)
        if steal_ivs:
            attribute_phase(
                "steal", intersect_intervals(off_span, steal_ivs)
            )
            off_span = subtract_intervals(off_span, steal_ivs, 0.0, T)
        attribute_phase("pool_overhead", off_span)
        if storm_ivs:
            attribute_phase("fault", intersect_intervals(ready, storm_ivs))
            attribute_phase(
                "ready", subtract_intervals(ready, storm_ivs, 0.0, T)
            )
        else:
            attribute_phase("ready", ready)
        fault_park_src = merge_intervals(
            stall_ivs
            + loss_ivs
            + ([(death_time[i], T)] if i in death_time else []),
            0.0, T,
        )
        attribute_phase(
            "fault", intersect_intervals(parked, fault_park_src)
        )
        parked = subtract_intervals(parked, fault_park_src, 0.0, T)
        gc_park = intersect_intervals(parked, gc_ivs)
        attribute_phase("gc", gc_park)
        if gc_mult > 1.0 and gc_park:
            # the amplified share of the pause is the fault's doing
            move = 1.0 - 1.0 / gc_mult
            attribute_phase("fault", gc_park, scale=move)
            attribute_phase("gc", gc_park, scale=-move)
        rem = subtract_intervals(parked, gc_ivs, 0.0, T)
        attribute_phase(
            "serial_master", intersect_intervals(rem, master_running)
        )
        rem = subtract_intervals(rem, master_running, 0.0, T)
        attribute_phase("queue_wait", intersect_intervals(rem, queue_ivs))
        attribute_phase(
            "latch_idle", subtract_intervals(rem, queue_ivs, 0.0, T)
        )
        for s in my_spans:
            exec_by_uid[s.uid] = interval_seconds(
                intersect_intervals(running, [(s.started, s.finished)])
            )

    window_exec: List[Tuple[PhaseWindow, List[Tuple[str, float]]]] = []
    for w in windows:
        tasks = [
            (s.uid, exec_by_uid.get(s.uid, 0.0))
            for s in spans
            if w.begin <= s.started < w.end
        ]
        window_exec.append((w, tasks))

    return RunObservation(
        workload=workload,
        n_threads=n_threads,
        steps=result.steps,
        sim_seconds=T,
        class_phase_seconds=acc,
        window_exec=window_exec,
        serial_intervals=serial_spine,
        gc_seconds=interval_seconds(gc_ivs),
        result=result,
    )


# -- kernel shares ----------------------------------------------------------


def kernel_shares(
    reports,
    params: Optional[CostParams] = None,
    fuse_rebuild: bool = True,
) -> Dict[str, float]:
    """Fraction of the forces phase's modeled cost owed to each kernel.

    Weights each kernel's flops and (amplification-scaled) bytes the
    same way the cost model prices them, then normalizes.  When
    rebuilds are fused into the force tasks (the paper's design) the
    rebuild work appears as its own pseudo-kernel.
    """
    p = params if params is not None else DEFAULT_COST_PARAMS

    def weight(pw) -> float:
        return pw.flops * p.cycles_per_flop + _CYCLES_PER_BYTE * (
            pw.bytes_irregular * p.irregular_amplification
            + pw.bytes_regular * p.regular_amplification
        )

    totals: Dict[str, float] = {}
    for report in reports:
        for kernel, pw in report.kernel_work.items():
            totals[kernel] = totals.get(kernel, 0.0) + weight(pw)
        if fuse_rebuild and report.rebuilt:
            rb = report.phase_work.get("rebuild")
            if rb is not None and (rb.flops or rb.bytes_irregular):
                totals["rebuild"] = totals.get("rebuild", 0.0) + weight(rb)
    grand = sum(totals.values())
    if grand <= 0:
        return {}
    return {k: v / grand for k, v in sorted(totals.items())}


# -- the decomposition ------------------------------------------------------


@dataclass
class AttributionResult:
    """The conserved decomposition of one run's speedup loss."""

    workload: str
    machine: str
    n_threads: int
    steps: int
    baseline_seconds: float
    achieved_seconds: float
    #: phase → bucket → seconds of wall-clock lost to that bucket
    by_phase: Dict[str, Dict[str, float]]
    #: class → phase → seconds (the fine-grained view behind by_phase)
    classes_by_phase: Dict[str, Dict[str, float]]
    #: kernel → seconds of the forces-phase work inflation it owns
    kernel_inflation: Dict[str, float]
    critical_path: CriticalPath
    observation: RunObservation = field(repr=False, default=None)
    baseline: RunObservation = field(repr=False, default=None)

    @property
    def ideal_seconds(self) -> float:
        return self.baseline_seconds / self.n_threads

    @property
    def achieved_speedup(self) -> float:
        return (
            self.baseline_seconds / self.achieved_seconds
            if self.achieved_seconds
            else 0.0
        )

    @property
    def gap_seconds(self) -> float:
        """Wall seconds lost versus perfect scaling (>= 0 normally)."""
        return self.achieved_seconds - self.ideal_seconds

    @property
    def buckets(self) -> Dict[str, float]:
        """Bucket → seconds, summed over phases (conserved vs the gap)."""
        out = {b: 0.0 for b in BUCKETS}
        for per_bucket in self.by_phase.values():
            for b, v in per_bucket.items():
                out[b] += v
        return out

    @property
    def bucket_total(self) -> float:
        return sum(self.buckets.values())

    def conservation_error(self) -> float:
        """|gap − Σ buckets| — should be float round-off only."""
        return abs(self.gap_seconds - self.bucket_total)

    def dominant(self) -> Tuple[str, str]:
        """(phase, bucket) contributing the most loss."""
        best = ("", "")
        best_v = float("-inf")
        for phase, per_bucket in self.by_phase.items():
            for bucket, v in per_bucket.items():
                if v > best_v:
                    best, best_v = (phase, bucket), v
        return best

    def speedup_bound(self) -> float:
        """Upper bound on speedup from the critical path (T₁ / T_cp)."""
        cp = self.critical_path.seconds
        return self.baseline_seconds / cp if cp > 0 else float("inf")

    def folded_stacks(self) -> List[str]:
        """Collapsed-stack flamegraph lines; see :mod:`repro.obs.export`."""
        from repro.obs.export import folded_stack_lines

        shares = None
        if self.kernel_inflation:
            total = sum(self.kernel_inflation.values())
            if total > 0:
                shares = {
                    k: v / total for k, v in self.kernel_inflation.items()
                }
        return folded_stack_lines(
            self.observation.class_phase_seconds,
            kernel_shares=shares,
            root=self.workload,
        )


def attribute_observations(
    obs: RunObservation,
    base: RunObservation,
    reports=None,
    *,
    machine: str = "",
    params: Optional[CostParams] = None,
    fuse_rebuild: bool = True,
) -> AttributionResult:
    """Pure decomposition step: difference two observations.

    Bucket value = (worker-seconds at N − worker-seconds at 1) / N per
    class and phase, which telescopes exactly to achieved − T₁/N.
    """
    n = obs.n_threads
    phases = obs.phases()
    for p in base.phases():
        if p not in phases:
            phases.append(p)
    classes_by_phase: Dict[str, Dict[str, float]] = {}
    by_phase: Dict[str, Dict[str, float]] = {
        p: {b: 0.0 for b in BUCKETS} for p in phases
    }
    for cls in CLASSES:
        here = obs.class_phase_seconds.get(cls, {})
        there = base.class_phase_seconds.get(cls, {})
        per_phase = {}
        for p in phases:
            delta = (here.get(p, 0.0) - there.get(p, 0.0)) / n
            per_phase[p] = delta
            by_phase[p][CLASS_TO_BUCKET[cls]] += delta
        classes_by_phase[cls] = per_phase

    shares = kernel_shares(
        reports, params=params, fuse_rebuild=fuse_rebuild
    ) if reports is not None else {}
    forces_inflation = by_phase.get("forces", {}).get("work_inflation", 0.0)
    kernel_inflation = {
        k: share * forces_inflation for k, share in shares.items()
    }

    return AttributionResult(
        workload=obs.workload,
        machine=machine,
        n_threads=n,
        steps=obs.steps,
        baseline_seconds=base.sim_seconds,
        achieved_seconds=obs.sim_seconds,
        by_phase=by_phase,
        classes_by_phase=classes_by_phase,
        kernel_inflation=kernel_inflation,
        critical_path=critical_path(
            obs.window_exec, obs.serial_intervals, obs.sim_seconds
        ),
        observation=obs,
        baseline=base,
    )


def attribute(
    workload: Union[str, object],
    n_threads: int,
    *,
    spec: Union[str, MachineSpec] = CORE_I7_920,
    steps: int = 5,
    seed: int = 0,
    trace=None,
    baseline: Optional[RunObservation] = None,
    params: Optional[CostParams] = None,
    fault_plan=None,
    **run_kwargs,
) -> AttributionResult:
    """End-to-end attribution for one workload × thread count.

    Runs the serial physics once (or reuses ``trace``), replays it at 1
    and at ``n_threads`` workers on fresh simulated machines, and
    returns the conserved decomposition.  ``baseline`` lets sweeps
    reuse the 1-thread observation.  A ``fault_plan`` is armed on the
    ``n_threads`` observation only — the baseline stays fault-free, so
    the new ``fault_loss`` bucket measures pure injected loss.
    """
    if isinstance(spec, str):
        from repro.machine import MACHINES

        spec = MACHINES[spec]
    if isinstance(workload, str):
        wl = BUILDERS[resolve_workload(workload)]()
    else:
        wl = workload
    if trace is None:
        trace = capture_trace(wl, steps)
    kwargs = dict(run_kwargs)
    if params is not None:
        kwargs["params"] = params
    if baseline is None:
        baseline = observe_run(
            trace, wl.system.n_atoms, spec, 1,
            seed=seed, name=wl.name, workload=wl.name, **kwargs,
        )
    if n_threads == 1 and fault_plan is None:
        obs = baseline
    else:
        obs = observe_run(
            trace, wl.system.n_atoms, spec, n_threads,
            seed=seed, name=wl.name, workload=wl.name,
            fault_plan=fault_plan, **kwargs,
        )
    return attribute_observations(
        obs, baseline, trace,
        machine=spec.name, params=params,
        fuse_rebuild=kwargs.get("fuse_rebuild", True),
    )


# -- reports ----------------------------------------------------------------


def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1e3:9.3f}"


def render_attribution(res: AttributionResult) -> str:
    """ASCII decomposition report (the `repro attribute` output)."""
    lines: List[str] = []
    n = res.n_threads
    lines.append(
        f"speedup-loss attribution: {res.workload} x{n} threads on "
        f"simulated {res.machine} ({res.steps} steps)"
    )
    lines.append(
        f"  baseline (1 thread) {_fmt_ms(res.baseline_seconds)} ms    "
        f"ideal (T1/{n}) {_fmt_ms(res.ideal_seconds)} ms"
    )
    lines.append(
        f"  achieved            {_fmt_ms(res.achieved_seconds)} ms    "
        f"speedup {res.achieved_speedup:.2f}x of ideal {n:.2f}x"
    )
    lines.append(
        f"  gap to ideal        {_fmt_ms(res.gap_seconds)} ms    "
        f"buckets sum {_fmt_ms(res.bucket_total)} ms "
        f"(residual {res.conservation_error() * 1e3:.2e} ms)"
    )
    lines.append("")
    header = f"{'phase':<10}" + "".join(f"{b:>15}" for b in BUCKETS)
    lines.append(header + f"{'total':>15}")
    lines.append("-" * len(header + "         total"))
    phases = [p for p in res.by_phase if p != SERIAL_PHASE]
    phases.append(SERIAL_PHASE)
    totals = {b: 0.0 for b in BUCKETS}
    for p in phases:
        per_bucket = res.by_phase.get(p, {})
        row = f"{p:<10}"
        for b in BUCKETS:
            v = per_bucket.get(b, 0.0)
            totals[b] += v
            row += f"{v * 1e3:>12.3f} ms"
        row += f"{sum(per_bucket.values()) * 1e3:>12.3f} ms"
        lines.append(row)
    row = f"{'total':<10}"
    for b in BUCKETS:
        row += f"{totals[b] * 1e3:>12.3f} ms"
    row += f"{res.bucket_total * 1e3:>12.3f} ms"
    lines.append(row)
    if res.kernel_inflation:
        # an N=1 or zero-work run has zero inflation in every kernel;
        # report flat 0% shares rather than dividing by a zero total
        total = sum(res.kernel_inflation.values())
        parts = ", ".join(
            f"{k} {v * 1e3:.3f} ms "
            f"({(v / total * 100) if total > 0 else 0.0:.1f}%)"
            for k, v in sorted(
                res.kernel_inflation.items(), key=lambda kv: -kv[1]
            )
        )
        lines.append("")
        lines.append(f"forces-phase work inflation by kernel: {parts}")
    cp = res.critical_path
    cp_pct = (
        cp.seconds / res.achieved_seconds * 100
        if res.achieved_seconds > 0
        else 0.0
    )
    lines.append("")
    lines.append(
        f"critical path {cp.seconds * 1e3:.3f} ms "
        f"({cp_pct:.1f}% of achieved); "
        f"speedup upper bound on this machine {res.speedup_bound():.2f}x "
        f"(parallelism {cp.parallelism:.2f})"
    )
    share = cp.phase_share()
    lines.append(
        "  critical-path share: "
        + ", ".join(
            f"{p} {v * 100:.1f}%"
            for p, v in sorted(share.items(), key=lambda kv: -kv[1])
        )
    )
    phase, bucket = res.dominant()
    gap = res.gap_seconds
    dom = res.by_phase.get(phase, {}).get(bucket, 0.0)
    pct = dom / gap * 100 if gap > 0 else 0.0
    lines.append(
        f"dominant loss: {bucket} in phase {phase!r} "
        f"({pct:.1f}% of the gap)"
    )
    return "\n".join(lines)


def attribution_csv(results: Sequence[AttributionResult]) -> str:
    """Long-form CSV: one row per workload × threads × phase × bucket."""
    lines = ["workload,machine,threads,phase,bucket,seconds"]
    for res in results:
        for phase, per_bucket in res.by_phase.items():
            for bucket, v in per_bucket.items():
                lines.append(
                    f"{res.workload},{res.machine},{res.n_threads},"
                    f"{phase},{bucket},{v!r}"
                )
    return "\n".join(lines) + "\n"


def result_to_dict(res: AttributionResult) -> dict:
    """JSON-ready summary of one attribution (bench schema row)."""
    phase, bucket = res.dominant()
    return {
        "workload": res.workload,
        "machine": res.machine,
        "threads": res.n_threads,
        "steps": res.steps,
        "baseline_seconds": res.baseline_seconds,
        "ideal_seconds": res.ideal_seconds,
        "achieved_seconds": res.achieved_seconds,
        "speedup": res.achieved_speedup,
        "ideal_speedup": float(res.n_threads),
        "gap_seconds": res.gap_seconds,
        "buckets": res.buckets,
        "by_phase": res.by_phase,
        "kernel_inflation": res.kernel_inflation,
        "critical_path_seconds": res.critical_path.seconds,
        "speedup_bound": res.speedup_bound(),
        "parallelism": res.critical_path.parallelism,
        "conservation_error": res.conservation_error(),
        "dominant_phase": phase,
        "dominant_bucket": bucket,
    }


# -- the bench harness ------------------------------------------------------

BENCH_SCHEMA = "repro.attribution.bench/1"


def bench_attribution(
    workloads: Sequence[str] = ("salt", "nanocar", "Al-1000"),
    threads: Sequence[int] = (1, 2, 4, 8),
    *,
    spec: Union[str, MachineSpec] = CORE_I7_920,
    steps: int = 5,
    seed: int = 0,
) -> dict:
    """Run the attribution sweep and return the benchmark payload.

    One physics capture and one 1-thread baseline per workload; every
    thread count reuses both.  This is the repo's perf-trajectory
    artifact (``BENCH_attribution.json``), validated by
    ``scripts/check_bench.py`` / ``make bench-smoke``.
    """
    if isinstance(spec, str):
        from repro.machine import MACHINES

        spec = MACHINES[spec]
    runs: List[dict] = []
    names = [resolve_workload(w) for w in workloads]
    for name in names:
        wl = BUILDERS[name]()
        trace = capture_trace(wl, steps)
        baseline = observe_run(
            trace, wl.system.n_atoms, spec, 1,
            seed=seed, name=wl.name, workload=wl.name,
        )
        for n in threads:
            res = attribute(
                wl, n, spec=spec, steps=steps, seed=seed,
                trace=trace, baseline=baseline,
            )
            runs.append(result_to_dict(res))
    return {
        "schema": BENCH_SCHEMA,
        "machine": spec.name,
        "steps": steps,
        "seed": seed,
        "workloads": names,
        "threads": list(threads),
        "buckets": list(BUCKETS),
        "runs": runs,
    }
