"""Attribution-driven executor autotuning.

The paper stops at *diagnosing* Al-1000's plateau (load imbalance →
latch idle).  This module closes the loop: a cheap pilot run's
conserved attribution buckets say *which* losses dominate, the bucket
shares propose a targeted candidate set over the executor strategy
space (queue mode × assignment policy × force-chunk granularity ×
steal policy × partition × pinning), and successive halving — short
replays first, survivors graduate to longer ones — finds the winner
without paying full-length replays for obviously-bad configs.

Every trial is a canonical :class:`~repro.runcache.key.RunSpec` run
through :func:`~repro.runcache.sweep.sweep`, so re-tuning is nearly
free once the cache is warm, tuning inherits crash-safe journaling and
process-pool fan-out, and two tuners asking the same question share
work byte-identically.

The output payload (``repro.autotune/1``) carries the pilot
diagnosis, the full search trajectory (every trial, kept or pruned),
and a before/after attribution diff of the winner against the
fixed-queue baseline — the proof that the recovered speedup came out
of the bucket the pilot blamed.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.machine.topology import Topology
from repro.runcache.store import RunCache
from repro.runcache.sweep import (
    _machine_spec,
    capture_spec,
    machine_key,
    observe_spec,
    sweep,
)
from repro.telemetry import runtime as telemetry_runtime

TUNE_SCHEMA = "repro.autotune/1"

#: worker-pinning policies the tuner may propose
PINNINGS = ("none", "pack", "spread")

#: bucket share of achieved runtime below which a loss is not worth
#: proposing candidates against
PROPOSE_THRESHOLD = 0.05


@dataclass(frozen=True)
class TuneConfig:
    """One point in the executor strategy space.

    Frozen and hashable so configs dedupe structurally; the default
    instance is exactly the paper's fixed-queue §II-B configuration
    (single shared queue, one task per worker, block partition, OS
    scheduling) — the baseline every tuned config is diffed against.
    """

    queue_mode: str = "single"
    assign: str = "owner-index"
    chunk: str = "thread"
    chunk_factor: int = 1
    steal_policy: str = "locality"
    partition: str = "block"
    pinning: str = "none"

    def options(self) -> Dict[str, Any]:
        """The RunSpec option dict this config selects (pinning rides
        separately, as explicit affinity masks)."""
        opts: Dict[str, Any] = {
            "queue_mode": self.queue_mode,
            "assign": self.assign,
            "chunk": self.chunk,
            "chunk_factor": self.chunk_factor,
            "partition": self.partition,
        }
        if self.queue_mode == "stealing":
            opts["steal_policy"] = self.steal_policy
        return opts

    def label(self) -> str:
        bits = [self.queue_mode]
        if self.assign != "owner-index":
            bits.append(self.assign)
        bits.append(
            f"fixed{self.chunk_factor}" if self.chunk == "fixed" else self.chunk
        )
        if self.queue_mode == "stealing":
            bits.append(self.steal_policy)
        if self.partition != "block":
            bits.append(self.partition)
        if self.pinning != "none":
            bits.append(f"pin-{self.pinning}")
        return "/".join(bits)

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)


BASELINE = TuneConfig()


def pinning_affinities(
    machine: str, n_threads: int, pinning: str
) -> Optional[List[List[int]]]:
    """Per-worker single-PU masks for a pinning policy.

    ``"pack"`` fills cores socket by socket (dense: maximal LLC
    sharing); ``"spread"`` deals cores round-robin across sockets
    (maximal aggregate cache/bandwidth — the Table III axis);
    ``"none"`` leaves placement to the simulated OS.
    """
    if pinning == "none":
        return None
    if pinning not in PINNINGS:
        raise ValueError(
            f"unknown pinning {pinning!r}; choose from {PINNINGS}"
        )
    topo = Topology(_machine_spec(machine))
    if pinning == "pack":
        cores = list(topo.cores())  # socket-major already
    else:
        per_socket: List[List[int]] = [
            [c for c in topo.cores() if topo._socket_of_core[c] == s]
            for s in range(topo.spec.sockets)
        ]
        cores = []
        for i in range(max(len(g) for g in per_socket)):
            for group in per_socket:
                if i < len(group):
                    cores.append(group[i])
    pus = [topo.pus_of_core(c)[0] for c in cores]
    return [[pus[i % len(pus)]] for i in range(n_threads)]


def propose_candidates(
    buckets: Dict[str, float], achieved_seconds: float
) -> List[TuneConfig]:
    """Candidate configs targeted at the pilot's dominant losses.

    The baseline always competes (the tuner can answer "keep what you
    have").  Order matters: ranking ties break by proposal order, and
    work-stealing sorts before the fixed alternatives because it is
    robust to imbalance the pilot could not see (other step counts,
    faults).
    """

    def share(bucket: str) -> float:
        if achieved_seconds <= 0:
            return 0.0
        return buckets.get(bucket, 0.0) / achieved_seconds

    cands: List[TuneConfig] = [BASELINE]
    if share("latch_idle") >= PROPOSE_THRESHOLD:
        # load imbalance: let idle workers take queued work (stealing,
        # finer force grains), balance the assignment, or re-cut the
        # partition by measured weight
        cands += [
            TuneConfig(queue_mode="stealing"),
            TuneConfig(queue_mode="stealing", chunk="fixed", chunk_factor=2),
            TuneConfig(queue_mode="stealing", chunk="fixed", chunk_factor=4),
            TuneConfig(queue_mode="stealing", chunk="guided"),
            TuneConfig(
                queue_mode="stealing", steal_policy="random",
                chunk="fixed", chunk_factor=2,
            ),
            TuneConfig(queue_mode="per-thread"),
            TuneConfig(queue_mode="per-thread", assign="cost-balanced"),
            TuneConfig(queue_mode="per-thread", partition="balanced"),
        ]
    if share("sched_overhead") >= PROPOSE_THRESHOLD:
        # contended shared-queue pops / serial dispatch: per-thread
        # queues drop the pop critical section entirely
        cands += [
            TuneConfig(queue_mode="per-thread"),
            TuneConfig(queue_mode="stealing"),
        ]
    if share("queue_wait") >= PROPOSE_THRESHOLD:
        cands += [
            TuneConfig(queue_mode="per-thread", assign="cost-balanced"),
            TuneConfig(queue_mode="stealing", chunk="fixed", chunk_factor=2),
        ]
    if share("work_inflation") >= PROPOSE_THRESHOLD:
        # cache/bandwidth pressure: placement is the lever
        cands += [
            TuneConfig(queue_mode="per-thread", pinning="spread"),
            TuneConfig(queue_mode="per-thread", pinning="pack"),
            TuneConfig(queue_mode="stealing", pinning="spread"),
        ]
    seen = set()
    out: List[TuneConfig] = []
    for c in cands:
        if c not in seen:
            seen.add(c)
            out.append(c)
    return out


def _config_spec(
    name: str,
    steps: int,
    threads: int,
    machine: str,
    seed: int,
    cfg: TuneConfig,
):
    return observe_spec(
        name, steps, threads, machine,
        seed=seed,
        affinities=pinning_affinities(machine, threads, cfg.pinning),
        **cfg.options(),
    )


def _rung_steps(steps: int) -> List[int]:
    """Successive-halving step ladder: quarter, half, full (deduped)."""
    ladder = [max(1, steps // 4), max(1, steps // 2), steps]
    out: List[int] = []
    for s in ladder:
        if not out or s > out[-1]:
            out.append(s)
    return out


def _summarize(cfg: TuneConfig, attribution) -> Dict[str, Any]:
    """JSON row for the baseline/winner attribution of one config."""
    obs = attribution.observation
    achieved = attribution.achieved_seconds
    latch = attribution.buckets.get("latch_idle", 0.0)
    return {
        "config": cfg.to_dict(),
        "label": cfg.label(),
        "sim_seconds": achieved,
        "speedup": attribution.achieved_speedup,
        "latch_idle_share": latch / achieved if achieved > 0 else 0.0,
        "buckets": attribution.buckets,
        "conservation_error": attribution.conservation_error(),
        "steals": list(obs.result.steals) if obs.result is not None else [],
    }


def autotune(
    workload: str,
    threads: int,
    machine: str = "x7560x4",
    *,
    steps: int = 3,
    pilot_steps: int = 1,
    seed: int = 0,
    cache: Optional[RunCache] = None,
    jobs: Optional[int] = None,
) -> Dict[str, Any]:
    """Tune one workload × machine × thread count; returns the
    ``repro.autotune/1`` payload.

    Phases (each one cache-backed sweep):

    1. **pilot** — baseline config at ``pilot_steps``, plus the
       1-thread reference; its bucket shares drive the proposal;
    2. **search** — successive halving over the candidates: every
       surviving config replays at the rung's step count, the slower
       half is pruned (ranked by simulated seconds, ties by proposal
       order), repeat through the full ``steps``;
    3. **verify** — full attribution of winner and baseline at
       ``steps``, diffed bucket by bucket.
    """
    from repro.obs.attribution import attribute_observations

    name_key = machine_key(machine)
    from repro.workloads import resolve_workload

    wname = resolve_workload(workload)
    emitter = telemetry_runtime.current()

    with emitter.span(
        "tune", workload=wname, machine=name_key, threads=threads,
        steps=steps, pilot_steps=pilot_steps,
    ):
        # -- pilot ---------------------------------------------------------
        pilot_specs = [
            capture_spec(wname, pilot_steps),
            observe_spec(wname, pilot_steps, 1, name_key, seed=seed),
            _config_spec(
                wname, pilot_steps, threads, name_key, seed, BASELINE
            ),
        ]
        pilot_sweep = sweep(pilot_specs, cache, jobs=jobs)
        pilot_trace, pilot_base, pilot_obs = pilot_sweep.artifacts
        pilot = attribute_observations(
            pilot_obs, pilot_base, pilot_trace, machine=name_key
        )
        candidates = propose_candidates(
            pilot.buckets, pilot.achieved_seconds
        )

        # -- successive halving -------------------------------------------
        survivors = list(candidates)
        trials: List[Dict[str, Any]] = []
        rungs: List[Dict[str, Any]] = []
        for rung_index, rung_steps in enumerate(_rung_steps(steps)):
            specs = [
                _config_spec(
                    wname, rung_steps, threads, name_key, seed, cfg
                )
                for cfg in survivors
            ]
            result = sweep(specs, cache, jobs=jobs)
            # order (unique per rung) breaks sim_seconds ties before the
            # trailing cfg/obs fields are ever compared
            ranked = sorted(
                (
                    (obs.sim_seconds, order, cfg, obs)
                    for order, (cfg, obs) in enumerate(
                        zip(survivors, result.artifacts)
                    )
                    if obs is not None
                ),
            )
            keep = max(1, -(-len(ranked) // 2))
            kept = {cfg for _s, _o, cfg, _a in ranked[:keep]}
            for sim_seconds, _order, cfg, obs in ranked:
                steals = (
                    list(obs.result.steals)
                    if obs.result is not None
                    else []
                )
                trials.append(
                    {
                        "config": cfg.to_dict(),
                        "label": cfg.label(),
                        "rung": rung_index,
                        "steps": rung_steps,
                        "sim_seconds": sim_seconds,
                        "kept": cfg in kept,
                        "steals": steals,
                    }
                )
                emitter.event(
                    "tune.trial", label=cfg.label(), rung=rung_index,
                    steps=rung_steps, sim_seconds=sim_seconds,
                    kept=cfg in kept, steals=steals,
                )
            rungs.append(
                {
                    "rung": rung_index,
                    "steps": rung_steps,
                    "candidates": len(ranked),
                    "kept": [c.label() for _s, _o, c, _a in ranked[:keep]],
                    "pruned": [
                        c.label() for _s, _o, c, _a in ranked[keep:]
                    ],
                }
            )
            survivors = [c for _s, _o, c, _a in ranked[:keep]]
            if len(survivors) == 1:
                break
        winner_cfg = survivors[0]

        # -- before/after attribution at full steps -----------------------
        final_specs = [
            capture_spec(wname, steps),
            observe_spec(wname, steps, 1, name_key, seed=seed),
            _config_spec(wname, steps, threads, name_key, seed, BASELINE),
            _config_spec(wname, steps, threads, name_key, seed, winner_cfg),
        ]
        final = sweep(final_specs, cache, jobs=jobs)
        trace, base_obs, baseline_obs, winner_obs = final.artifacts
        baseline_att = attribute_observations(
            baseline_obs, base_obs, trace, machine=name_key
        )
        winner_att = attribute_observations(
            winner_obs, base_obs, trace, machine=name_key
        )
        baseline_row = _summarize(BASELINE, baseline_att)
        winner_row = _summarize(winner_cfg, winner_att)
        diff = {
            b: winner_row["buckets"][b] - baseline_row["buckets"][b]
            for b in winner_row["buckets"]
        }
        emitter.event(
            "tune.winner", label=winner_cfg.label(),
            speedup=winner_row["speedup"],
            baseline_speedup=baseline_row["speedup"],
        )

    return {
        "schema": TUNE_SCHEMA,
        "workload": wname,
        "machine": name_key,
        "threads": threads,
        "steps": steps,
        "pilot_steps": pilot_steps,
        "seed": seed,
        "pilot": {
            "speedup": pilot.achieved_speedup,
            "achieved_seconds": pilot.achieved_seconds,
            "buckets": pilot.buckets,
            "dominant_bucket": pilot.dominant()[1],
        },
        "candidates": [c.label() for c in candidates],
        "rungs": rungs,
        "trials": trials,
        "baseline": baseline_row,
        "winner": winner_row,
        "diff": diff,
    }


def winning_config(payload: Dict[str, Any]) -> Dict[str, Any]:
    """The standalone best-config artifact (``repro.autotune.config/1``)
    a deployment would consume: workload × machine → strategy knobs."""
    winner = payload["winner"]
    cfg = TuneConfig(**winner["config"])
    return {
        "schema": "repro.autotune.config/1",
        "workload": payload["workload"],
        "machine": payload["machine"],
        "threads": payload["threads"],
        "label": winner["label"],
        "config": winner["config"],
        "options": cfg.options(),
        "affinities": pinning_affinities(
            payload["machine"], payload["threads"], cfg.pinning
        ),
        "speedup": winner["speedup"],
        "baseline_speedup": payload["baseline"]["speedup"],
    }


def render_tune(payload: Dict[str, Any]) -> str:
    """ASCII report of one tuning run (the ``repro tune`` output)."""
    lines: List[str] = []
    lines.append(
        f"autotune: {payload['workload']} x{payload['threads']} threads "
        f"on simulated {payload['machine']} ({payload['steps']} steps)"
    )
    pilot = payload["pilot"]
    lines.append(
        f"  pilot ({payload['pilot_steps']} step"
        f"{'s' if payload['pilot_steps'] != 1 else ''}): speedup "
        f"{pilot['speedup']:.2f}x, dominant loss "
        f"{pilot['dominant_bucket']} -> {len(payload['candidates'])} "
        f"candidates"
    )
    for rung in payload["rungs"]:
        lines.append(
            f"  rung {rung['rung']} ({rung['steps']} steps): "
            f"{rung['candidates']} configs -> kept "
            f"{', '.join(rung['kept'])}"
        )
    base = payload["baseline"]
    win = payload["winner"]
    lines.append("")
    lines.append(
        f"{'config':<32}{'sim ms':>10}{'speedup':>10}{'latch %':>10}"
        f"{'steals':>8}"
    )
    for row in (base, win):
        lines.append(
            f"{row['label']:<32}"
            f"{row['sim_seconds'] * 1e3:>10.3f}"
            f"{row['speedup']:>9.2f}x"
            f"{row['latch_idle_share'] * 100:>9.1f}%"
            f"{sum(row['steals']):>8}"
        )
    lines.append("")
    lines.append("attribution diff (winner - baseline), ms of wall clock:")
    for bucket, delta in sorted(
        payload["diff"].items(), key=lambda kv: kv[1]
    ):
        if abs(delta) < 1e-12:
            continue
        lines.append(f"  {bucket:<16}{delta * 1e3:>+10.3f} ms")
    gain = (
        win["speedup"] / base["speedup"] if base["speedup"] > 0 else 0.0
    )
    lines.append("")
    lines.append(
        f"winner {win['label']}: {win['speedup']:.2f}x vs baseline "
        f"{base['speedup']:.2f}x ({gain:.2f}x relative)"
    )
    return "\n".join(lines)
