"""Attribution-driven autotuning of the executor strategy space.

See :mod:`repro.tuning.autotune` for the pilot → propose → successive
halving → verify pipeline behind ``repro tune``.
"""

from repro.tuning.autotune import (
    BASELINE,
    PINNINGS,
    TUNE_SCHEMA,
    TuneConfig,
    autotune,
    pinning_affinities,
    propose_candidates,
    render_tune,
    winning_config,
)

__all__ = [
    "BASELINE",
    "PINNINGS",
    "TUNE_SCHEMA",
    "TuneConfig",
    "autotune",
    "pinning_affinities",
    "propose_candidates",
    "render_tune",
    "winning_config",
]
