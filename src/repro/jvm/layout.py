"""Java object layouts.

Sizes follow 64-bit HotSpot conventions of the paper's era (2009/2010,
compressed oops off for simplicity): 16-byte object headers, 8-byte
references, 8-byte alignment.  Molecular Workbench "stores data about
each atom in an array of objects" — i.e. a reference array whose slots
point at ``Atom`` objects, which in turn reference ``Vector3`` wrapper
objects for position/velocity/acceleration.  Touching one atom's
position therefore chases: array slot → Atom header+field → Vector3
object, each a potential cache miss.  This module describes those
shapes so the heap model can lay them out and the cache simulator can
be fed realistic address streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

OBJECT_HEADER_BYTES = 16
REFERENCE_BYTES = 8
ALIGNMENT = 8


def _align(n: int, a: int = ALIGNMENT) -> int:
    return (n + a - 1) // a * a


@dataclass(frozen=True)
class ObjectLayout:
    """Instance layout of one Java class."""

    class_name: str
    #: (field_name, byte size) for primitives; references are 8 bytes
    fields: Tuple[Tuple[str, int], ...]

    @property
    def instance_bytes(self) -> int:
        return _align(
            OBJECT_HEADER_BYTES + sum(size for _, size in self.fields)
        )

    def field_offset(self, name: str) -> int:
        """Byte offset of a named field within the instance."""
        off = OBJECT_HEADER_BYTES
        for fname, size in self.fields:
            if fname == name:
                return off
            off += size
        raise KeyError(f"{self.class_name} has no field {name!r}")


#: The "simple convenience class that wraps together three floating point
#: values" of §V-B — "representing three dimensional forces, placements,
#: and velocities".  3 doubles + header = 40 bytes each.
VECTOR3_LAYOUT = ObjectLayout(
    "org.mw.math.Vector3",
    (("x", 8), ("y", 8), ("z", 8)),
)

#: An MW-style Atom object: scalar fields plus references to Vector3
#: position/velocity/acceleration/force objects.
ATOM_LAYOUT = ObjectLayout(
    "org.mw.md.Atom",
    (
        ("mass", 8),
        ("charge", 8),
        ("sigma", 8),
        ("epsilon", 8),
        ("index", 4),
        ("element", 4),
        ("movable", 1),
        ("_pad", 7),
        ("position", REFERENCE_BYTES),
        ("velocity", REFERENCE_BYTES),
        ("acceleration", REFERENCE_BYTES),
        ("force", REFERENCE_BYTES),
    ),
)


def array_header_bytes() -> int:
    """Header of a Java array (mark word + klass + length, aligned)."""
    return _align(OBJECT_HEADER_BYTES + 4)


def atom_object_graph(n_atoms: int) -> List[Tuple[str, int]]:
    """Allocation sequence for an MW atom array, in program order.

    Returns ``(class_name, size)`` tuples: the reference array first,
    then per atom an Atom object followed by its four Vector3s — the
    order rapid successive ``new()`` calls would issue them.
    """
    if n_atoms < 0:
        raise ValueError(f"negative atom count: {n_atoms}")
    seq: List[Tuple[str, int]] = [
        ("org.mw.md.Atom[]", array_header_bytes() + REFERENCE_BYTES * n_atoms)
    ]
    for _ in range(n_atoms):
        seq.append((ATOM_LAYOUT.class_name, ATOM_LAYOUT.instance_bytes))
        for _ in range(4):
            seq.append(
                (VECTOR3_LAYOUT.class_name, VECTOR3_LAYOUT.instance_bytes)
            )
    return seq
