"""Heap model with selectable placement policy.

§V-A: "We created a new array, then populated it with objects that were
created by rapidly successive calls to new().  Due to the way the Java
memory manager selects the actual memory locations for data, we were
unsure if this approach was feasible. ... [cache miss rates] saw no
significant improvement.  This was a strong indicator that the objects
were not being reordered and packed in memory."

Two placement policies make both worlds testable:

``PlacementPolicy.BUMP``
    Idealised thread-local allocation buffer: successive allocations are
    contiguous.  This is what the reordering attempt *hoped* the JVM
    would do (and what a C implementation gets trivially).

``PlacementPolicy.FRAGMENTED``
    Allocations land in scattered free gaps left by collected garbage,
    interleaved with other threads' TLABs — successive ``new()`` calls
    are *not* adjacent.  This reproduces the paper's observed outcome:
    reordering object creation changes nothing measurable.

The heap is an address bookkeeping model (no bytes are stored); its
product is object addresses for the cache simulator.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.jvm.layout import _align


class PlacementPolicy(enum.Enum):
    BUMP = "bump"
    FRAGMENTED = "fragmented"


@dataclass
class HeapObject:
    """One live object: identity, class, size, current address."""

    obj_id: int
    class_name: str
    size: int
    address: int


class Heap:
    """Address-level heap model.

    Parameters
    ----------
    size_bytes:
        Heap capacity.
    policy:
        Placement policy for :meth:`allocate`.
    fragment_bytes:
        FRAGMENTED only — the heap is pre-divided into gaps of roughly
        this size, consumed in a seeded-random order; objects allocated
        consecutively end up roughly ``fragment-distance`` apart.
    seed:
        RNG seed (placement is deterministic given the seed).
    """

    BASE_ADDRESS = 0x7F00_0000_0000  # cosmetic: looks like a real heap

    def __init__(
        self,
        size_bytes: int = 256 * 2**20,
        policy: PlacementPolicy = PlacementPolicy.FRAGMENTED,
        fragment_bytes: int = 8 * 1024,
        seed: int = 0,
    ):
        if size_bytes <= 0:
            raise ValueError(f"heap size must be positive: {size_bytes}")
        self.size_bytes = size_bytes
        self.policy = policy
        self._rng = np.random.default_rng(seed)
        self._objects: Dict[int, HeapObject] = {}
        self._next_id = 0
        self._bump = self.BASE_ADDRESS
        self.bytes_allocated = 0
        self.alloc_count = 0
        if policy is PlacementPolicy.FRAGMENTED:
            n_frags = max(1, size_bytes // fragment_bytes)
            starts = (
                self.BASE_ADDRESS
                + np.arange(n_frags, dtype=np.int64) * fragment_bytes
            )
            self._rng.shuffle(starts)
            self._gaps: List[Tuple[int, int]] = [
                (int(s), fragment_bytes) for s in starts
            ]
            self.fragment_bytes = fragment_bytes
        else:
            self._gaps = []
            self.fragment_bytes = size_bytes
        # objects too big for any fragment go to a dedicated large-object
        # space above the regular heap (JVM 'humongous' allocation)
        self._large_bump = self.BASE_ADDRESS + size_bytes

    # -- allocation ---------------------------------------------------------

    def allocate(self, class_name: str, size: int) -> HeapObject:
        """Allocate one object; returns its handle (with address)."""
        if size <= 0:
            raise ValueError(f"object size must be positive: {size}")
        size = _align(size)
        addr = self._place(size)
        obj = HeapObject(self._next_id, class_name, size, addr)
        self._objects[obj.obj_id] = obj
        self._next_id += 1
        self.bytes_allocated += size
        self.alloc_count += 1
        return obj

    def allocate_all(
        self, sequence: Sequence[Tuple[str, int]]
    ) -> List[HeapObject]:
        """Allocate a program-order sequence of (class, size)."""
        return [self.allocate(c, s) for c, s in sequence]

    def _place(self, size: int) -> int:
        if self.policy is PlacementPolicy.BUMP:
            if self._bump + size > self.BASE_ADDRESS + self.size_bytes:
                raise MemoryError("simulated heap exhausted (bump)")
            addr = self._bump
            self._bump += size
            return addr
        if size > self.fragment_bytes:
            addr = self._large_bump
            self._large_bump += size
            return addr
        # FRAGMENTED: fill the current gap; move to the next random gap
        # when it cannot hold the object.
        while self._gaps:
            start, room = self._gaps[-1]
            if room >= size:
                self._gaps[-1] = (start + size, room - size)
                return start
            self._gaps.pop()
        raise MemoryError("simulated heap exhausted (fragmented)")

    # -- object queries -----------------------------------------------------

    def free(self, obj: HeapObject) -> None:
        """Drop an object (its space is *not* reused until a GC —
        matching 'live until the next garbage collection')."""
        self._objects.pop(obj.obj_id, None)
        self.bytes_allocated -= obj.size

    def live_objects(self) -> List[HeapObject]:
        """Handles of every currently live object."""
        return list(self._objects.values())

    def addresses(self, objects: Sequence[HeapObject]) -> np.ndarray:
        """The current heap addresses of a sequence of objects."""
        return np.array([o.address for o in objects], dtype=np.int64)

    def adjacency_score(self, objects: Sequence[HeapObject]) -> float:
        """How packed a sequence of objects is: the fraction of
        consecutive pairs whose gap equals the first object's size
        (i.e. truly adjacent).  1.0 = perfectly packed; the tool the
        paper wished for ("a heap viewer that would show the actual
        data addresses of objects") reduces to this number."""
        if len(objects) < 2:
            return 1.0
        good = 0
        for a, b in zip(objects, objects[1:]):
            if b.address - a.address == a.size:
                good += 1
        return good / (len(objects) - 1)

    # -- garbage collection -------------------------------------------------

    def compact(self) -> None:
        """Sliding compaction in *allocation order* (object ids).

        Generational copying collectors preserve their own traversal
        order — not the application's intended spatial order — which is
        why application-level reordering cannot be enforced from Java.
        After compaction the heap is bump-like from the survivors' end.
        """
        survivors = sorted(self._objects.values(), key=lambda o: o.obj_id)
        addr = self.BASE_ADDRESS
        for obj in survivors:
            obj.address = addr
            addr += obj.size
        self._bump = addr
        self.policy = PlacementPolicy.BUMP
        self._gaps = []

    def __len__(self) -> int:
        return len(self._objects)
