"""Allocation accounting and a generational GC model.

§V-B: "If small chunks of memory are allocated throughout the memory
space, they can quickly force out the very data this approach is
attempting to keep in the caches.  This is often the case in Java,
where many small objects can be created and discarded in a relatively
short time, but live until the next garbage collection.  Using the
VisualVM live allocated objects view, we were able to see that over 50%
of our live memory was being used by one type of temporary object, a
simple convenience class that wraps together three floating point
values.  Unfortunately, this view does not provide any information as
to which thread or method was creating these objects."

:class:`AllocationRecorder` is the ground truth — it records class,
bytes, thread and site for every allocation.  The VisualVM-model heap
viewer in :mod:`repro.perftools` exposes only the class histogram
(dropping thread/site attribution, as the real tool did); the
"wished-for" extended view keeps them.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass
class ClassStats:
    count: int = 0
    bytes: int = 0


@dataclass
class GcEvent:
    """One young-generation collection."""

    time: float
    pause_seconds: float
    reclaimed_bytes: int
    promoted_bytes: int


class AllocationRecorder:
    """Ground-truth allocation log.

    ``live`` allocations survive collections (old generation);
    non-live ones are young garbage that dies at the next GC but counts
    as live memory until then.
    """

    def __init__(self):
        self._live: Dict[str, ClassStats] = defaultdict(ClassStats)
        self._young: Dict[str, ClassStats] = defaultdict(ClassStats)
        #: (class, thread) -> ClassStats — the attribution VisualVM lacked
        self.by_thread: Dict[Tuple[str, str], ClassStats] = defaultdict(
            ClassStats
        )
        self.total_allocated_bytes = 0
        self.total_allocated_count = 0

    def record(
        self,
        class_name: str,
        size: int,
        *,
        thread: str = "main",
        tenured: bool = False,
        count: int = 1,
    ) -> None:
        """Record ``count`` allocations of ``size`` bytes each."""
        if size < 0 or count < 0:
            raise ValueError("size and count must be non-negative")
        bucket = self._live if tenured else self._young
        bucket[class_name].count += count
        bucket[class_name].bytes += size * count
        key = (class_name, thread)
        self.by_thread[key].count += count
        self.by_thread[key].bytes += size * count
        self.total_allocated_bytes += size * count
        self.total_allocated_count += count

    # -- views ---------------------------------------------------------------

    def live_histogram(self) -> Dict[str, ClassStats]:
        """Class histogram of live memory *including* young garbage that
        has not been collected yet — what 'live allocated objects'
        actually shows."""
        out: Dict[str, ClassStats] = {}
        for src in (self._live, self._young):
            for cls, st in src.items():
                agg = out.setdefault(cls, ClassStats())
                agg.count += st.count
                agg.bytes += st.bytes
        return out

    def live_bytes(self) -> int:
        """Total live bytes (tenured + uncollected young)."""
        return sum(s.bytes for s in self.live_histogram().values())

    def dominant_class(self) -> Tuple[str, float]:
        """(class, fraction of live bytes) for the largest class."""
        hist = self.live_histogram()
        total = sum(s.bytes for s in hist.values())
        if not total:
            return ("", 0.0)
        cls, st = max(hist.items(), key=lambda kv: kv[1].bytes)
        return (cls, st.bytes / total)

    def young_bytes(self) -> int:
        """Bytes of young garbage awaiting the next collection."""
        return sum(s.bytes for s in self._young.values())

    def collect_young(self) -> int:
        """Drop young garbage; returns bytes reclaimed."""
        reclaimed = self.young_bytes()
        self._young.clear()
        return reclaimed


class GcModel:
    """Triggers collections when the young generation fills.

    ``maybe_collect(now)`` returns a :class:`GcEvent` (with a
    stop-the-world pause duration) when allocation since the last
    collection exceeds the young-generation size.  The machine-level
    harness injects the pause into every running thread — GC jitter is
    one of the fine-grained imbalance sources §IV-B's samplers cannot
    resolve.
    """

    def __init__(
        self,
        recorder: AllocationRecorder,
        young_gen_bytes: int = 64 * 2**20,
        pause_per_mb: float = 0.4e-3,
        min_pause: float = 1.0e-3,
    ):
        if young_gen_bytes <= 0:
            raise ValueError("young generation must be positive")
        self.recorder = recorder
        self.young_gen_bytes = young_gen_bytes
        self.pause_per_mb = pause_per_mb
        self.min_pause = min_pause
        self.events: List[GcEvent] = []

    def maybe_collect(self, now: float) -> Optional[GcEvent]:
        """Collect if the young generation is full; returns the event."""
        young = self.recorder.young_bytes()
        if young < self.young_gen_bytes:
            return None
        reclaimed = self.recorder.collect_young()
        pause = max(
            self.min_pause, self.pause_per_mb * reclaimed / 2**20
        )
        event = GcEvent(
            time=now,
            pause_seconds=pause,
            reclaimed_bytes=reclaimed,
            promoted_bytes=0,
        )
        self.events.append(event)
        return event

    @property
    def total_pause(self) -> float:
        return sum(e.pause_seconds for e in self.events)
