"""A model of the JVM memory manager, as seen from a performance tool.

The paper's memory-performance chapter (§V) is a study of what the Java
virtual machine *prevents*: you cannot choose object addresses, you
cannot verify packing because no tool exposes addresses, and ubiquitous
short-lived wrapper objects pollute the caches.  This package models the
relevant mechanisms:

* :mod:`~repro.jvm.layout` — Java object layouts: headers, reference
  fields, the ``Vector3`` wrapper class, and the "array of atom objects
  holding references" structure MW used,
* :mod:`~repro.jvm.heap` — a heap with selectable placement policy:
  ``bump`` (idealised TLAB: rapid successive ``new()`` calls are
  adjacent — what the paper's reordering attempt hoped for) and
  ``fragmented`` (allocation into scattered free gaps — what it got),
* :mod:`~repro.jvm.gc` — allocation statistics and a generational
  garbage-collection model producing the "live allocated objects"
  class histogram that VisualVM showed (>50 % of live memory in one
  three-float convenience class).
"""

from repro.jvm.gc import AllocationRecorder, GcModel
from repro.jvm.heap import Heap, PlacementPolicy
from repro.jvm.layout import (
    ATOM_LAYOUT,
    VECTOR3_LAYOUT,
    ObjectLayout,
    array_header_bytes,
    atom_object_graph,
)

__all__ = [
    "ATOM_LAYOUT",
    "AllocationRecorder",
    "GcModel",
    "Heap",
    "ObjectLayout",
    "PlacementPolicy",
    "VECTOR3_LAYOUT",
    "array_header_bytes",
    "atom_object_graph",
]
