"""repro — reproduction of Krieger & Strout (ICPP 2010),
"Performance Evaluation of an Irregular Application Parallelized in
Java".

The package rebuilds the paper's entire stack in Python:

* :mod:`repro.md` — the Molecular Workbench-style MD engine
  (predictor/corrector, linked cells, Verlet lists, LJ/Coulomb/bonded
  forces),
* :mod:`repro.core` — its parallelization (thread pools, 1/N atom
  partitions, privatized force arrays, latch-closed phases), with a
  real-thread correctness backend and a simulated-machine timing
  backend,
* :mod:`repro.machine` — a deterministic multicore machine model
  (topology, caches, DRAM bandwidth, an OS scheduler with migration and
  affinity) standing in for the paper's three Intel test systems,
* :mod:`repro.concurrent` — the ``java.util.concurrent`` analog,
* :mod:`repro.jvm` — heap placement, allocation churn, GC statistics,
* :mod:`repro.perftools` — models of JaMON, VisualVM, VTune and Shark,
  including their observer effects and sampling blind spots,
* :mod:`repro.workloads` — the salt / nanocar / Al-1000 benchmarks,
* :mod:`repro.analysis` — load-balance metrics and paper-style reports.

Quickstart: see ``examples/quickstart.py`` and DESIGN.md.
"""

__version__ = "1.0.0"
