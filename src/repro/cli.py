"""Command-line interface: ``python -m repro <command>``.

Every experiment in the paper is runnable from the shell:

========== =====================================================
command    regenerates
========== =====================================================
table1     Table I   — benchmark characteristics
table2     Table II  — test machines and memory hierarchies
fig1       Fig. 1    — speedup sweep on the simulated i7 920
fig2       Fig. 2    — thread→core residency heat map
table3     Table III — pinning topologies on the 4x X7560
topology   §V-C      — hwloc-style topology report
run        plain physics: run a workload, print energies,
           optionally write an XYZ trajectory
trace      ground-truth trace + metrics of one simulated run
compare    modeled perf-tool error vs the ground truth (subset
           selectable with --tools)
leaderboard
           tool-accuracy leaderboard: every modeled tool ranked
           by displayed-vs-true error over a workload x machine
           grid (cached sweep); ``--faults`` reruns one cell under
           an injected straggler and reports which tools change
           rank
sweep      journaled, supervised grid sweep: checkpoint every
           spec to an append-only journal (``--journal DIR``),
           resume an interrupted campaign with zero re-execution
           of completed specs (``--resume DIR``); exit 3 when
           specs were quarantined (partial success)
attribute  speedup-loss decomposition (work inflation, idle,
           overhead, GC, injected faults) per phase + flamegraph
           export
chaos      fault-injection sweep: arm fault plans, assert the
           self-healing runtime completes every run
cache      content-addressed run cache: stats | clear | verify |
           salt (trace/attribute/chaos cache by default; opt out
           with --no-cache)
report     merge a telemetry run directory into a unified
           timeline, a Perfetto trace, a Prometheus exposition,
           and one self-contained HTML sweep report
========== =====================================================

The deterministic commands accept ``--telemetry DIR``: orchestration
spans, cache traffic, and chaos verdicts are emitted into that run
directory (``repro.telemetry/1`` JSONL, one file per process — pool
workers included), ready for ``repro report DIR``.  Telemetry watches
the *runtime* only; simulated traces stay byte-identical with it on
or off.

Usage errors (unknown workload, bad thread count, unreadable fault
plan) exit with code 2 and a one-line message on stderr — never a
traceback.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro import __version__
from repro.analysis import ascii_bar_chart, table1, table2, table3
from repro.analysis.speedup import fig1_sweep
from repro.concurrent import QueueMode
from repro.core import SimulatedParallelRun, capture_trace
from repro.machine import MACHINES, SimMachine, inject_background_load
from repro.machine.background import inject_mobile_load
from repro.machine.topology import Topology
from repro.md.io import XyzTrajectoryWriter
from repro.obs import (
    attribute,
    attribution_csv,
    compare_tools,
    render_attribution,
    result_to_dict,
    write_folded_stacks,
)
from repro.perftools import VTune, topology_report
from repro.workloads import BUILDERS, PAPER_WORKLOADS, resolve_workload


def _die(message: str):
    """Usage error: one line on stderr, exit code 2, no traceback."""
    print(f"repro: error: {message}", file=sys.stderr)
    raise SystemExit(2)


def _machine_spec(name: str):
    if name not in MACHINES:
        _die(f"unknown machine {name!r}; choose from {sorted(MACHINES)}")
    return MACHINES[name]


def _workload_name(name: str) -> str:
    """Canonical workload key (tolerates 'al1000'-style aliases)."""
    try:
        return resolve_workload(name)
    except KeyError:
        _die(f"unknown workload {name!r}; choose from {sorted(BUILDERS)}")


def _positive_int(text: str) -> int:
    """argparse type for --threads and friends (must be >= 1)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not an integer: {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _workloads(names: Optional[List[str]]):
    names = (
        [_workload_name(n) for n in names] if names else list(PAPER_WORKLOADS)
    )
    return [BUILDERS[n]() for n in names]


def _ensure_outdir(path: str) -> str:
    """Create an output directory (and parents) if missing."""
    os.makedirs(path, exist_ok=True)
    return path


def _run_cache(args):
    """The content-addressed run cache, or None under ``--no-cache``.

    The cache changes wall-clock only — every cached artifact is
    byte-identical to a fresh run (see ``repro cache verify``) — so
    caching is on by default for the deterministic commands.
    """
    if getattr(args, "no_cache", False):
        return None
    from repro.runcache import RunCache

    return RunCache(getattr(args, "cache_dir", None))


def cmd_table1(args) -> None:
    print(table1(_workloads(args.workloads)))


def cmd_table2(args) -> None:
    print(table2(MACHINES.values()))


def cmd_fig1(args) -> None:
    spec = _machine_spec(args.machine)
    threads = [int(t) for t in args.threads.split(",")]
    curves = fig1_sweep(
        _workloads(args.workloads), spec, threads=threads, steps=args.steps
    )
    print(
        ascii_bar_chart(
            {name: c.speedups for name, c in curves.items()},
            threads,
            title=f"Speedup vs cores on simulated {spec.name}",
        )
    )


def cmd_fig2(args) -> None:
    spec = _machine_spec(args.machine)
    wl = BUILDERS[_workload_name(args.workload)]()
    trace = capture_trace(wl, args.steps)
    machine = SimMachine(spec, seed=args.seed, migrate_prob=0.3)
    aff = None
    if args.pinned:
        topo = Topology(spec)
        pus = sorted(topo.mask_cores_on_one_socket(
            min(args.threads, spec.cores_per_socket)
        ))
        aff = [[pus[i % len(pus)]] for i in range(args.threads)]
    SimulatedParallelRun(
        trace, wl.system.n_atoms, machine, args.threads,
        affinities=aff, name="wl", repeat=2,
    ).run()
    vtune = VTune(machine)
    workers = [f"wl-pool-worker-{i}" for i in range(args.threads)]
    print(vtune.thread_to_core_plot(workers))
    for w in workers:
        print(f"  {w}: {vtune.migrations(w)} migrations, "
              f"{vtune.cores_visited(w)} cores visited")


def cmd_table3(args) -> None:
    spec = _machine_spec("x7560x4")
    topo = Topology(spec)
    wl = BUILDERS["Al-1000"]()
    trace = capture_trace(wl, args.steps)
    configs = [
        ("4, one core per processor", 4, topo.mask_one_core_per_socket(4)),
        ("4, 4 cores on one processor", 4, topo.mask_cores_on_one_socket(4)),
        ("4, OS scheduled", 4, None),
        ("8, OS scheduled", 8, None),
        ("8, two cores per processor", 8, topo.mask_n_cores_per_socket(2)),
        ("8, 8 cores on one processor", 8, topo.mask_cores_on_one_socket(8)),
        ("32, OS scheduled", 32, None),
    ]
    rows = []
    for label, n, mask in configs:
        machine = SimMachine(spec, seed=args.seed)
        inject_background_load(
            machine, [0, 2, 4, 16], utilization=0.45, duration=10.0
        )
        inject_mobile_load(machine, 8, utilization=0.3, duration=10.0)
        aff = None
        if mask is not None:
            pus = sorted(mask)
            aff = [[pus[i % len(pus)]] for i in range(n)]
        res = SimulatedParallelRun(
            trace, wl.system.n_atoms, machine, n,
            affinities=aff, queue_mode=QueueMode.PER_THREAD,
            name="al", repeat=2,
        ).run()
        rows.append(
            {
                "Number of Cores Used / Topology": label,
                "Runtime (ms, simulated)": f"{res.sim_seconds * 1e3:.2f}",
            }
        )
    print(table3(rows))


PAPER_FIG1 = {"salt": 3.63, "nanocar": 3.03, "Al-1000": 1.42}
FIG1_BANDS = {
    "salt": (3.2, 4.0),
    "nanocar": (2.5, 3.3),
    "Al-1000": (1.15, 1.7),
}


def cmd_scorecard(args) -> None:
    """Quick end-to-end reproduction check: Table I + Fig. 1 bands."""
    rows = []

    def check(label, measured, target, ok):
        rows.append((label, measured, target, "PASS" if ok else "FAIL"))

    workloads = [BUILDERS[n]() for n in ("nanocar", "salt", "Al-1000")]
    expected = {
        "nanocar": (989, 0, 2277, "Bonds"),
        "salt": (800, 800, 0, "Ionic"),
        "Al-1000": (1000, 0, 0, "Lennard-Jones"),
    }
    for wl in workloads:
        row = wl.characteristics()
        atoms, charged, bonds, dom = expected[wl.name]
        ok = (
            row["# of Atoms"] == atoms
            and row["# of Charged Atoms"] == charged
            and row["# of Bonds"] == bonds
            and row["Dominant Computation Type"] == dom
        )
        check(
            f"Table I: {wl.name}",
            f"{row['# of Atoms']}/{row['# of Charged Atoms']}/"
            f"{row['# of Bonds']}/{row['Dominant Computation Type']}",
            f"{atoms}/{charged}/{bonds}/{dom}",
            ok,
        )

    curves = fig1_sweep(workloads, threads=(1, 2, 3, 4), steps=args.steps)
    for name, curve in curves.items():
        s4 = curve.speedup_at(4)
        lo, hi = FIG1_BANDS[name]
        check(
            f"Fig. 1 @4 cores: {name}",
            f"{s4:.2f}x",
            f"{PAPER_FIG1[name]:.2f}x (band {lo}-{hi})",
            lo <= s4 <= hi,
        )
    ordered = (
        curves["salt"].speedup_at(4)
        > curves["nanocar"].speedup_at(4)
        > curves["Al-1000"].speedup_at(4)
    )
    check("Fig. 1 ordering", "salt > nanocar > Al-1000",
          "salt > nanocar > Al-1000", ordered)

    width = max(len(r[0]) for r in rows)
    failures = 0
    for label, measured, target, verdict in rows:
        if verdict == "FAIL":
            failures += 1
        print(f"{label:<{width}}  measured {measured:<28} "
              f"paper {target:<32} [{verdict}]")
    print(
        f"\n{len(rows) - failures}/{len(rows)} checks pass; run "
        "'pytest benchmarks/ --benchmark-only' for the full suite "
        "(Table II/III, Fig. 2, §IV, §V, ablations, extensions)."
    )
    if failures:
        raise SystemExit(1)


def cmd_topology(args) -> None:
    print(topology_report(_machine_spec(args.machine)))


def cmd_run(args) -> None:
    wl = BUILDERS[args.workload]()
    engine = wl.make_engine()
    engine.prime()
    writer = None
    if args.xyz:
        writer = XyzTrajectoryWriter(args.xyz, every=args.xyz_every)
        writer.__enter__()
    try:
        for chunk in range(0, args.steps, args.report_every):
            report = None
            for _ in range(min(args.report_every, args.steps - chunk)):
                report = engine.step()
                if writer:
                    writer.frame(engine)
            print(
                f"step {engine.step_count:>6}: "
                f"E_pot {report.potential_energy:>12.3f} eV  "
                f"E_kin {report.kinetic_energy:>9.3f} eV  "
                f"T {engine.system.temperature():>7.0f} K  "
                f"rebuilds {engine.neighbors.rebuild_count:>4}"
            )
    finally:
        if writer:
            writer.__exit__(None, None, None)
            print(f"wrote {writer.frames_written} frames to {args.xyz}")


def cmd_trace(args) -> None:
    """Run a workload under ground-truth tracing; write trace + metrics.

    Both the cached and the fresh path produce the same artifact bundle
    (file bytes + summary) through ``repro.runcache.sweep``, so the
    files and the stdout summary are byte-identical either way.
    """
    from repro.runcache import execute_spec, run_and_store, trace_spec

    _machine_spec(args.machine)  # validate before digesting
    spec = trace_spec(
        args.workload, args.steps, args.threads, args.machine, args.seed
    )
    cache = _run_cache(args)
    if cache is None:
        artifact = execute_spec(spec)
    else:
        artifact, _hit = run_and_store(cache, spec)

    _ensure_outdir(args.out)
    paths = {}
    for fname, data in artifact["files"].items():
        paths[fname] = os.path.join(args.out, fname)
        with open(paths[fname], "wb") as fh:
            fh.write(data)
    print(artifact["summary"])
    print(
        f"wrote {paths['trace.json']} "
        f"({artifact['n_trace_events']} trace events), "
        f"{paths['metrics.json']}, {paths['metrics.csv']}"
    )
    print(
        "open the trace in Perfetto (https://ui.perfetto.dev) or "
        "chrome://tracing"
    )


def cmd_compare(args) -> None:
    """Quantify each modeled tool's error against the ground truth."""
    _machine_spec(args.machine)
    try:
        report = compare_tools(
            workload=_workload_name(args.workload),
            steps=args.steps,
            n_threads=args.threads,
            machine=args.machine,
            seed=args.seed,
            include_observer_effects=not args.no_observer,
            tools=args.tools,
            cache=_run_cache(args),
        ).render()
    except ValueError as exc:
        _die(str(exc))
    print(report)
    if args.out:
        _ensure_outdir(args.out)
        path = os.path.join(args.out, "compare.txt")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(report + "\n")
        print(f"wrote {path}")


def cmd_leaderboard(args) -> None:
    """Rank every modeled tool by displayed-vs-true error."""
    from repro.obs.leaderboard import (
        DEFAULT_MACHINES,
        DEFAULT_WORKLOADS,
        fault_leaderboard,
        fault_leaderboard_payload,
        leaderboard,
        leaderboard_payload,
    )

    if args.faults:
        if args.workloads and len(args.workloads) > 1:
            _die("--faults scores one cell; pass at most one workload")
        if args.machines and len(args.machines) > 1:
            _die("--faults scores one cell; pass at most one machine")
        workload = _workload_name(
            args.workloads[0] if args.workloads else "Al-1000"
        )
        machine = args.machines[0] if args.machines else "i7-920"
        _machine_spec(machine)
        result = fault_leaderboard(
            workload,
            machine,
            threads=args.threads,
            steps=args.steps,
            seed=args.seed,
            cache=_run_cache(args),
            jobs=args.jobs,
        )
        print(result.render())
        if args.out:
            _ensure_outdir(args.out)
            path = os.path.join(args.out, "leaderboard_faults.json")
            with open(path, "w", encoding="utf-8") as fh:
                json.dump(fault_leaderboard_payload(result), fh, indent=1)
                fh.write("\n")
            print(f"\nwrote {path}")
        return

    workloads = (
        [_workload_name(n) for n in args.workloads]
        if args.workloads
        else list(DEFAULT_WORKLOADS)
    )
    machines = args.machines or list(DEFAULT_MACHINES)
    for name in machines:
        _machine_spec(name)
    try:
        result = leaderboard(
            workloads,
            machines,
            threads=args.threads,
            steps=args.steps,
            seed=args.seed,
            cache=_run_cache(args),
            jobs=args.jobs,
        )
    except ValueError as exc:
        _die(str(exc))
    print(result.render())
    if args.out:
        _ensure_outdir(args.out)
        path = os.path.join(args.out, "leaderboard.json")
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(leaderboard_payload(result), fh, indent=1)
            fh.write("\n")
        print(f"\nwrote {path}")


def _thread_list(text: str) -> List[int]:
    """Parse a ``1,2,4,8``-style thread list (usage error on junk)."""
    try:
        values = [int(t) for t in text.split(",") if t.strip()]
    except ValueError:
        _die(f"bad --threads {text!r}; expected comma-separated integers")
    if not values or any(v < 1 for v in values):
        _die(f"bad --threads {text!r}; every count must be >= 1")
    return values


def cmd_sweep(args) -> None:
    """Journaled, supervised grid sweep with checkpoint/resume.

    Exit codes: 0 every spec produced an artifact; 3 the sweep
    completed but quarantined permanent failures (partial success);
    2 usage error.
    """
    from repro.runcache import (
        SupervisionPolicy,
        journal_specs,
        load_journal,
        observe_spec,
        sweep,
    )
    from repro.runcache.resilience import JOURNAL_NAME

    if args.resume and args.journal:
        _die("pass --journal DIR or --resume DIR, not both")
    if args.resume:
        grid_flags = [
            name
            for name, value in (
                ("--workloads", args.workloads),
                ("--machine", args.machine),
                ("--threads", args.threads),
                ("--steps", args.steps),
                ("--seed", args.seed),
            )
            if value is not None
        ]
        if grid_flags:
            _die(
                "--resume rebuilds the grid from the journal; drop "
                + " ".join(grid_flags)
            )
        if args.no_cache:
            _die("--resume replays through the run cache; drop --no-cache")
        state = load_journal(args.resume)
        if state is None:
            _die(
                f"no {JOURNAL_NAME} in {args.resume!r}; "
                "start a campaign with --journal first"
            )
        specs = journal_specs(state)
        if not specs:
            _die(f"journal in {args.resume!r} records no specs")
    else:
        machine = args.machine or "i7-920"
        _machine_spec(machine)
        workloads = [
            _workload_name(n)
            for n in (args.workloads or ["salt", "nanocar", "Al-1000"])
        ]
        threads = _thread_list(args.threads or "1,2,4,8")
        steps = 2 if args.steps is None else args.steps
        seed = 0 if args.seed is None else args.seed
        specs = [
            observe_spec(w, steps, t, machine, seed=seed)
            for w in workloads
            for t in threads
        ]

    if args.retries < 0:
        _die(f"--retries must be >= 0, got {args.retries}")
    if args.timeout is not None and args.timeout <= 0:
        _die(f"--timeout must be > 0 seconds, got {args.timeout}")
    policy = SupervisionPolicy(
        max_attempts=args.retries + 1, timeout=args.timeout
    )
    result = sweep(
        specs,
        _run_cache(args),
        jobs=args.jobs,
        journal=args.journal,
        resume=args.resume,
        policy=policy,
        ensemble=args.ensemble,
    )

    n_unique = len({s.encode() for s in specs})
    print(
        f"swept {len(specs)} specs ({n_unique} unique): "
        f"{result.hits} cache hits, {len(result.executed)} executed"
    )
    if result.resumed:
        print(
            f"  resumed: {result.resumed} specs journaled complete by "
            "the interrupted run, served with zero re-execution"
        )
    if result.ensemble_runs:
        print(
            f"  ensemble: {result.ensemble_runs} runs vectorized in "
            f"{result.ensemble_batches} "
            f"batch{'es' if result.ensemble_batches != 1 else ''}"
        )
    if result.fanout:
        print(f"  fan-out: {result.jobs} jobs"
              + (" (degraded to serial)" if result.degraded else ""))
    if result.retries or result.timeouts or result.pool_restarts:
        print(
            f"  supervision: {result.retries} retries, "
            f"{result.timeouts} timeouts, "
            f"{result.pool_restarts} pool restarts"
        )
    if args.out:
        _ensure_outdir(args.out)
        path = os.path.join(args.out, "sweep.json")
        payload = {
            "schema": "repro.sweepcli/1",
            "n_specs": len(specs),
            "labels": [s.label() for s in specs],
            "hits": result.hits,
            "executed": list(result.executed),
            "resumed": result.resumed,
            "retries": result.retries,
            "timeouts": result.timeouts,
            "pool_restarts": result.pool_restarts,
            "degraded": result.degraded,
            "fanout": result.fanout,
            "jobs": result.jobs,
            "ensemble_batches": result.ensemble_batches,
            "ensemble_runs": result.ensemble_runs,
            "quarantined": [q.to_dict() for q in result.quarantined],
        }
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=1)
            fh.write("\n")
        print(f"wrote {path}")
    if not result.ok:
        n = len(result.quarantined)
        print(
            f"quarantined {n} spec{'s' if n != 1 else ''} "
            "(permanent failures; artifacts withheld):"
        )
        for q in result.quarantined:
            carried = " [carried from previous run]" if q.carried else ""
            print(
                f"  {q.label}  attempts={q.attempts}{carried}\n"
                f"    {q.error.splitlines()[0] if q.error else ''}"
            )
        raise SystemExit(3)


def cmd_attribute(args) -> None:
    """Decompose the speedup loss of one workload × thread count."""
    spec = _machine_spec(args.machine)
    cache = _run_cache(args)
    if cache is None:
        res = attribute(
            _workload_name(args.workload),
            args.threads,
            spec=spec,
            steps=args.steps,
            seed=args.seed,
        )
    else:
        from repro.runcache import attribute_cached

        res = attribute_cached(
            _workload_name(args.workload),
            args.threads,
            spec=args.machine,
            steps=args.steps,
            seed=args.seed,
            cache=cache,
            jobs=args.jobs,
        )
    print(render_attribution(res))
    if args.out:
        _ensure_outdir(args.out)
        folded = os.path.join(args.out, "flamegraph.folded")
        shares = None
        total = sum(res.kernel_inflation.values())
        if total > 0:
            shares = {
                k: v / total for k, v in res.kernel_inflation.items()
            }
        n_lines = write_folded_stacks(
            folded,
            res.observation.class_phase_seconds,
            kernel_shares=shares,
            root=res.workload,
        )
        csv_path = os.path.join(args.out, "attribution.csv")
        with open(csv_path, "w", encoding="utf-8") as fh:
            fh.write(attribution_csv([res]))
        json_path = os.path.join(args.out, "attribution.json")
        with open(json_path, "w", encoding="utf-8") as fh:
            json.dump(result_to_dict(res), fh, indent=1)
            fh.write("\n")
        print(
            f"\nwrote {folded} ({n_lines} stacks; feed to flamegraph.pl "
            f"or speedscope), {csv_path}, {json_path}"
        )


def cmd_tune(args) -> None:
    """Autotune executor strategy for one workload × machine × threads."""
    from repro.tuning import autotune, render_tune, winning_config

    _machine_spec(args.machine)
    payload = autotune(
        _workload_name(args.workload),
        args.threads,
        args.machine,
        steps=args.steps,
        pilot_steps=args.pilot_steps,
        seed=args.seed,
        cache=_run_cache(args),
        jobs=args.jobs,
    )
    print(render_tune(payload))
    outputs = []
    if args.out:
        _ensure_outdir(args.out)
        outputs.append(os.path.join(args.out, "autotune.json"))
        outputs.append(os.path.join(args.out, "winning_config.json"))
    if getattr(args, "telemetry", None):
        # drop the payload next to the telemetry so `repro report DIR`
        # renders the search trajectory
        outputs.append(os.path.join(args.telemetry, "autotune.json"))
    for path in outputs:
        doc = (
            winning_config(payload)
            if os.path.basename(path) == "winning_config.json"
            else payload
        )
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=1)
            fh.write("\n")
    if outputs:
        print(f"\nwrote {', '.join(outputs)}")


def cmd_chaos(args) -> None:
    """Fault-injection sweep: arm plans, assert every run survives."""
    from repro.faults import FaultPlan, chaos_sweep, render_chaos

    spec = _machine_spec(args.machine)
    workloads = [_workload_name(n) for n in args.workloads] if (
        args.workloads
    ) else ["salt", "nanocar", "Al-1000"]
    plans = None
    if args.plan:
        try:
            plan = FaultPlan.load(args.plan)
        except ValueError as exc:
            _die(str(exc))
        plans = {plan.name or os.path.basename(args.plan): plan}
    payload = chaos_sweep(
        workloads,
        args.threads,
        plans=plans,
        spec=spec,
        steps=args.steps,
        seed=args.seed,
        cache=_run_cache(args),
        jobs=args.jobs,
    )
    print(render_chaos(payload))
    if args.out:
        _ensure_outdir(args.out)
        path = os.path.join(args.out, "chaos.json")
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=1)
            fh.write("\n")
        print(f"wrote {path}")
    if not payload["all_ok"]:
        raise SystemExit(1)


def cmd_report(args) -> None:
    """Render one telemetry run directory into the report artifacts."""
    from repro.telemetry.report import write_report

    try:
        paths = write_report(
            args.run_dir, args.out, machine=args.machine
        )
    except ValueError as exc:
        _die(str(exc))
    for key in ("merged", "trace", "metrics", "json", "html"):
        print(f"wrote {paths[key]}")
    print(
        "open report.html in a browser; load trace.json at "
        "https://ui.perfetto.dev"
    )


def cmd_cache(args) -> None:
    """Inspect/manage the content-addressed run cache."""
    from repro.runcache import RunCache, code_version_salt

    if args.cache_cmd is None:
        _die("cache: choose one of stats | clear | verify | salt")
    if args.cache_cmd == "salt":
        # bare digest on stdout — CI uses it as the actions/cache key
        print(code_version_salt())
        return
    cache = RunCache(args.cache_dir)
    if args.cache_cmd == "stats":
        stats = cache.stats()
        if args.json:
            print(json.dumps(stats.to_dict(), indent=1, sort_keys=True))
        else:
            print(stats.render())
    elif args.cache_cmd == "clear":
        n = cache.clear()
        print(f"cleared {n} entries from {cache.root}")
    elif args.cache_cmd == "verify":
        reports = cache.verify(sample=args.sample, seed=args.seed)
        if not reports:
            print(f"nothing to verify: {cache.root} is empty")
            return
        failed = 0
        for rep in reports:
            status = "ok  " if rep.ok else "FAIL"
            print(f"{status} {rep.digest[:16]}  {rep.label}  {rep.detail}")
            failed += 0 if rep.ok else 1
        print(
            f"verified {len(reports)} cached entr"
            f"{'y' if len(reports) == 1 else 'ies'}: "
            f"{len(reports) - failed} byte-identical, {failed} mismatched"
        )
        if failed:
            raise SystemExit(1)


def _add_cache_flags(p, jobs: bool = True) -> None:
    """``--no-cache`` / ``--cache-dir`` (and ``--jobs``) for the
    deterministic commands that run through the content-addressed
    cache by default."""
    p.add_argument(
        "--no-cache", action="store_true",
        help="bypass the run cache and re-simulate from scratch",
    )
    p.add_argument(
        "--cache-dir", default=None,
        help="run-cache directory (default: $REPRO_RUNCACHE_DIR or "
        "~/.cache/repro/runcache)",
    )
    if jobs:
        p.add_argument(
            "--jobs", type=_positive_int, default=None,
            help="process-pool width for cache misses "
            "(default: os.cpu_count())",
        )


def _add_telemetry_flag(p) -> None:
    p.add_argument(
        "--telemetry", default=None, metavar="DIR",
        help="emit repro.telemetry/1 runtime telemetry (orchestration "
        "spans, cache traffic) into this run directory; render it "
        "with 'repro report DIR'",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of Krieger & Strout (ICPP 2010).",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command")

    p = sub.add_parser("table1", help="benchmark characteristics")
    p.add_argument("--workloads", nargs="*", default=None)
    p.set_defaults(fn=cmd_table1)

    p = sub.add_parser("table2", help="test machines")
    p.set_defaults(fn=cmd_table2)

    p = sub.add_parser("fig1", help="speedup sweep")
    p.add_argument("--machine", default="i7-920")
    p.add_argument("--threads", default="1,2,3,4")
    p.add_argument("--steps", type=int, default=20)
    p.add_argument("--workloads", nargs="*", default=None)
    p.set_defaults(fn=cmd_fig1)

    p = sub.add_parser("fig2", help="thread-to-core residency")
    p.add_argument("--machine", default="i7-920")
    p.add_argument("--workload", default="Al-1000")
    p.add_argument("--threads", type=_positive_int, default=4)
    p.add_argument("--steps", type=int, default=20)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--pinned", action="store_true")
    p.set_defaults(fn=cmd_fig2)

    p = sub.add_parser("table3", help="pinning topologies")
    p.add_argument("--steps", type=int, default=20)
    p.add_argument("--seed", type=int, default=3)
    p.set_defaults(fn=cmd_table3)

    p = sub.add_parser(
        "scorecard", help="quick paper-vs-measured reproduction check"
    )
    p.add_argument("--steps", type=int, default=20)
    p.set_defaults(fn=cmd_scorecard)

    p = sub.add_parser("topology", help="hwloc-style report")
    p.add_argument("--machine", default="x7560x4")
    p.set_defaults(fn=cmd_topology)

    p = sub.add_parser(
        "trace",
        help="run a workload under ground-truth tracing; write a "
        "Chrome/Perfetto trace and a metrics dump",
    )
    p.add_argument("workload", choices=sorted(BUILDERS))
    p.add_argument("--machine", default="i7-920")
    p.add_argument("--threads", type=_positive_int, default=4)
    p.add_argument("--steps", type=int, default=5)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--out", default="trace_out",
        help="output directory for trace.json / metrics.{json,csv}",
    )
    _add_cache_flags(p, jobs=False)
    _add_telemetry_flag(p)
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser(
        "compare",
        help="quantify each modeled perf tool's error vs ground truth",
    )
    p.add_argument("--workload", default="salt", choices=sorted(BUILDERS))
    p.add_argument("--machine", default="i7-920")
    p.add_argument("--threads", type=_positive_int, default=4)
    p.add_argument("--steps", type=int, default=5)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--no-observer", action="store_true",
        help="skip the intrusive-tool (JaMON/VisualVM) reruns",
    )
    p.add_argument(
        "--tools", nargs="*", default=None, metavar="TOOL",
        help="restrict the report to these tools (e.g. visualvm-1s "
        "vtune-5ms jamon-monitors visualvm-instr); unknown names are "
        "a usage error",
    )
    p.add_argument(
        "--out", default=None,
        help="also write the report into this directory (created if "
        "missing)",
    )
    _add_cache_flags(p, jobs=False)
    _add_telemetry_flag(p)
    p.set_defaults(fn=cmd_compare)

    p = sub.add_parser(
        "leaderboard",
        help="rank every modeled perf tool by displayed-vs-true error "
        "over a workload x machine grid (cached sweep)",
    )
    p.add_argument(
        "--workloads", nargs="*", default=None,
        help="workloads to grid over (default: salt nanocar Al-1000)",
    )
    p.add_argument(
        "--machines", nargs="*", default=None,
        help="machines to grid over (default: i7-920 e5450x2 x7560x4)",
    )
    p.add_argument("--threads", type=_positive_int, default=4)
    p.add_argument("--steps", type=_positive_int, default=4)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--faults", action="store_true",
        help="score one cell twice — fault-free and under an injected "
        "straggler scaled to the measured runtime — and report which "
        "tools change rank (default cell: Al-1000 on i7-920)",
    )
    p.add_argument(
        "--out", default=None,
        help="write the repro.toolerror/1 payload as leaderboard.json "
        "(or leaderboard_faults.json under --faults) here (directory "
        "created if missing)",
    )
    _add_cache_flags(p)
    _add_telemetry_flag(p)
    p.set_defaults(fn=cmd_leaderboard)

    p = sub.add_parser(
        "sweep",
        help="journaled, supervised grid sweep with crash-safe "
        "checkpoint/resume (exit 3 = completed with quarantined specs)",
    )
    p.add_argument(
        "--workloads", nargs="*", default=None,
        help="workloads to grid over (default: salt nanocar Al-1000)",
    )
    p.add_argument(
        "--machine", default=None,
        help="machine to sweep on (default: i7-920)",
    )
    p.add_argument(
        "--threads", default=None,
        help="comma-separated thread counts (default: 1,2,4,8)",
    )
    p.add_argument("--steps", type=_positive_int, default=None)
    p.add_argument("--seed", type=int, default=None)
    p.add_argument(
        "--journal", default=None, metavar="DIR",
        help="append every submission/start/finish/failure to "
        "DIR/sweep-journal.jsonl (repro.sweepjournal/1) so an "
        "interrupted sweep can be resumed",
    )
    p.add_argument(
        "--resume", default=None, metavar="DIR",
        help="resume the campaign journaled in DIR: the grid is "
        "rebuilt from the journal, completed specs are served from "
        "the cache with zero re-execution, and journaling continues "
        "into the same file (grid flags conflict with --resume)",
    )
    p.add_argument(
        "--retries", type=int, default=2,
        help="retry attempts per spec after the first failure, with "
        "decorrelated-jitter backoff (default 2)",
    )
    p.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-attempt wall-clock limit; expired pool attempts are "
        "killed and retried (default: unlimited)",
    )
    p.add_argument(
        "--out", default=None,
        help="write a repro.sweepcli/1 summary as sweep.json here "
        "(directory created if missing)",
    )
    ens = p.add_mutually_exclusive_group()
    ens.add_argument(
        "--ensemble", dest="ensemble", action="store_true",
        default=None,
        help="force the vectorized ensemble path for homogeneous "
        "miss-batches (default: automatic)",
    )
    ens.add_argument(
        "--no-ensemble", dest="ensemble", action="store_false",
        help="disable ensemble batching; every miss runs on the "
        "scalar pool path",
    )
    _add_cache_flags(p)
    _add_telemetry_flag(p)
    p.set_defaults(fn=cmd_sweep)

    p = sub.add_parser(
        "attribute",
        help="decompose the gap between ideal and achieved speedup "
        "into work-inflation / idle / overhead buckets per phase",
    )
    p.add_argument(
        "--workload", default="Al-1000",
        help="workload name (aliases like 'al1000' accepted)",
    )
    p.add_argument("--machine", default="i7-920")
    p.add_argument("--threads", type=_positive_int, default=4)
    p.add_argument("--steps", type=int, default=5)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--out", default=None,
        help="write flamegraph.folded / attribution.{csv,json} here "
        "(directory created if missing)",
    )
    _add_cache_flags(p)
    _add_telemetry_flag(p)
    p.set_defaults(fn=cmd_attribute)

    p = sub.add_parser(
        "tune",
        help="autotune executor strategy (queue mode, assignment, "
        "chunking, stealing, pinning) from a pilot run's attribution",
    )
    p.add_argument(
        "--workload", default="Al-1000",
        help="workload name (aliases like 'al1000' accepted)",
    )
    p.add_argument("--machine", default="x7560x4")
    p.add_argument("--threads", type=_positive_int, default=32)
    p.add_argument("--steps", type=_positive_int, default=3)
    p.add_argument(
        "--pilot-steps", type=_positive_int, default=1,
        help="step count of the cheap diagnostic run that proposes "
        "the candidate set",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--out", default=None,
        help="write autotune.json / winning_config.json here "
        "(directory created if missing)",
    )
    _add_cache_flags(p)
    _add_telemetry_flag(p)
    p.set_defaults(fn=cmd_tune)

    p = sub.add_parser(
        "chaos",
        help="sweep fault plans across workloads and assert the "
        "self-healing runtime completes every run deterministically",
    )
    p.add_argument(
        "--workloads", nargs="*", default=None,
        help="workloads to stress (default: salt nanocar Al-1000)",
    )
    p.add_argument("--machine", default="i7-920")
    p.add_argument("--threads", type=_positive_int, default=4)
    p.add_argument("--steps", type=_positive_int, default=3)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--plan", default=None,
        help="fault-plan JSON file to arm instead of the default "
        "battery (one plan per fault type)",
    )
    p.add_argument(
        "--out", default=None,
        help="write the repro.chaos/1 payload as chaos.json here "
        "(directory created if missing)",
    )
    _add_cache_flags(p)
    _add_telemetry_flag(p)
    p.set_defaults(fn=cmd_chaos)

    p = sub.add_parser(
        "cache",
        help="inspect/manage the content-addressed run cache",
    )
    csub = p.add_subparsers(dest="cache_cmd")
    for name, chelp in (
        ("stats", "entry counts, size, hit rate, code salt"),
        ("clear", "delete every cached entry"),
        ("verify", "re-run sampled entries, assert byte-identity"),
        ("salt", "print the code-version salt (CI cache key)"),
    ):
        cp = csub.add_parser(name, help=chelp)
        if name != "salt":
            cp.add_argument(
                "--cache-dir", default=None,
                help="run-cache directory (default: $REPRO_RUNCACHE_DIR "
                "or ~/.cache/repro/runcache)",
            )
        if name == "stats":
            cp.add_argument(
                "--json", action="store_true",
                help="machine-readable stats on stdout",
            )
        if name == "verify":
            cp.add_argument(
                "--sample", type=_positive_int, default=1,
                help="number of cached entries to re-run (default 1)",
            )
            cp.add_argument("--seed", type=int, default=0)
        cp.set_defaults(fn=cmd_cache, cache_cmd=name)
    p.set_defaults(fn=cmd_cache, cache_cmd=None)

    p = sub.add_parser(
        "report",
        help="render a telemetry run directory: unified timeline, "
        "Perfetto trace, Prometheus metrics, self-contained HTML",
    )
    p.add_argument(
        "run_dir",
        help="telemetry run directory (the --telemetry DIR of a "
        "previous command, or a bench script's sweep dir)",
    )
    p.add_argument(
        "--out", default=None,
        help="write the artifacts here instead of into the run "
        "directory itself",
    )
    p.add_argument(
        "--machine", default=None,
        help="machine label for the report header (default: taken "
        "from bench.json or the run manifest)",
    )
    p.set_defaults(fn=cmd_report)

    p = sub.add_parser("run", help="run a workload's physics")
    p.add_argument("workload", choices=sorted(BUILDERS))
    p.add_argument("--steps", type=int, default=200)
    p.add_argument("--report-every", type=int, default=50)
    p.add_argument("--xyz", default=None, help="write trajectory here")
    p.add_argument("--xyz-every", type=int, default=10)
    p.set_defaults(fn=cmd_run)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "fn", None) is None:
        # no subcommand: print full help (not a traceback), exit code 2
        parser.print_help()
        return 2
    from repro.telemetry import runtime as telemetry_runtime

    if getattr(args, "telemetry", None):
        telemetry_runtime.activate(
            args.telemetry, label=getattr(args, "command", "") or ""
        )
    try:
        args.fn(args)
    except BrokenPipeError:
        # stdout closed early (e.g. piping into `head`) — not an error
        return 0
    finally:
        telemetry_runtime.deactivate()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
