"""Structural/dynamical observables: RDF, MSD, VACF.

Physics-validation instruments for the MD substrate: the radial
distribution function of the salt workload must show ionic shell
structure, a crystal's mean-squared displacement must stay bounded
while a melt's grows, etc.  These are the checks a downstream user
would run to trust the engine.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.md.boundary import Boundary, ReflectiveBox
from repro.md.system import AtomSystem


def radial_distribution(
    positions: np.ndarray,
    box: np.ndarray,
    r_max: float,
    n_bins: int = 100,
    boundary: Optional[Boundary] = None,
    subset_a: Optional[np.ndarray] = None,
    subset_b: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """g(r) between two atom subsets (defaults: all-vs-all).

    Returns (bin centers, g).  Normalization uses the ideal-gas pair
    density over the box volume, so a structureless system gives
    g(r) ≈ 1 at large r.
    """
    if r_max <= 0 or n_bins < 1:
        raise ValueError("r_max must be > 0 and n_bins >= 1")
    boundary = boundary or ReflectiveBox(np.asarray(box, dtype=float))
    n = len(positions)
    a = np.arange(n) if subset_a is None else np.asarray(subset_a)
    b = np.arange(n) if subset_b is None else np.asarray(subset_b)
    # all cross pairs (excluding self-pairs)
    ii = np.repeat(a, len(b))
    jj = np.tile(b, len(a))
    keep = ii != jj
    ii, jj = ii[keep], jj[keep]
    dr = boundary.displacement(positions[ii] - positions[jj])
    r = np.linalg.norm(dr, axis=1)
    r = r[r < r_max]
    counts, edges = np.histogram(r, bins=n_bins, range=(0.0, r_max))
    centers = 0.5 * (edges[:-1] + edges[1:])
    shell_vol = 4.0 / 3.0 * np.pi * (edges[1:] ** 3 - edges[:-1] ** 3)
    volume = float(np.prod(box))
    pair_density = len(ii) / volume
    ideal = pair_density * shell_vol
    g = np.where(ideal > 0, counts / ideal, 0.0)
    return centers, g


def first_peak(
    centers: np.ndarray, g: np.ndarray, r_min: float = 0.5
) -> Tuple[float, float]:
    """(position, height) of the first real-space RDF peak."""
    mask = centers >= r_min
    if not mask.any():
        raise ValueError("no bins beyond r_min")
    idx = np.argmax(g[mask])
    return float(centers[mask][idx]), float(g[mask][idx])


class TrajectoryObserver:
    """Accumulates per-step positions/velocities for MSD and VACF."""

    def __init__(self, system: AtomSystem, subset: Optional[np.ndarray] = None):
        self.system = system
        self.subset = (
            np.arange(system.n_atoms) if subset is None else np.asarray(subset)
        )
        self._positions: list = []
        self._velocities: list = []

    def record(self) -> None:
        self._positions.append(self.system.positions[self.subset].copy())
        self._velocities.append(self.system.velocities[self.subset].copy())

    @property
    def n_frames(self) -> int:
        return len(self._positions)

    def mean_squared_displacement(self) -> np.ndarray:
        """MSD(t) relative to the first recorded frame, in Å²."""
        if not self._positions:
            return np.zeros(0)
        ref = self._positions[0]
        return np.array(
            [
                float(np.mean(np.sum((p - ref) ** 2, axis=1)))
                for p in self._positions
            ]
        )

    def velocity_autocorrelation(self) -> np.ndarray:
        """Normalized VACF(t) = <v(0)·v(t)> / <v(0)·v(0)>."""
        if not self._velocities:
            return np.zeros(0)
        v0 = self._velocities[0]
        denom = float(np.mean(np.sum(v0 * v0, axis=1)))
        if denom <= 0:
            return np.zeros(len(self._velocities))
        return np.array(
            [
                float(np.mean(np.sum(v0 * v, axis=1))) / denom
                for v in self._velocities
            ]
        )
