"""Roofline analysis — the standard lens on the paper's core finding.

"Prior experience with irregular applications led us to suspect that
the performance limiter for MW was the memory subsystem." (§V)  The
roofline model makes that suspicion quantitative: a phase whose
arithmetic intensity (flops per byte of DRAM traffic) falls below the
machine's *ridge point* is bandwidth-bound and cannot profit from more
cores sharing the same memory controller.

:func:`phase_roofline` classifies each phase of a captured work trace
against a machine; :func:`render_roofline` draws the classic ASCII
chart.  These are the numbers behind Fig. 1's shape: salt's Coulomb
phase sits far right of the ridge, Al-1000's LJ phase far left.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.costmodel import DEFAULT_COST_PARAMS, CostParams
from repro.machine.topology import MachineSpec
from repro.md.engine import StepReport


@dataclass
class RooflinePoint:
    """One phase's position on the roofline."""

    phase: str
    #: flops per DRAM byte (after object-graph amplification)
    intensity: float
    #: flops/s one core attains at this intensity
    attainable_single: float
    #: flops/s n cores attain sharing one socket's bandwidth
    attainable_parallel: float
    memory_bound_single: bool
    memory_bound_parallel: bool

    @property
    def parallel_efficiency_cap(self) -> float:
        """Upper bound on per-core efficiency when sharing the socket."""
        if self.attainable_single <= 0:
            return 1.0
        return min(
            1.0, self.attainable_parallel / self.attainable_single
        )


def machine_ridge_point(
    spec: MachineSpec, params: Optional[CostParams] = None
) -> float:
    """Arithmetic intensity at which one core turns compute-bound."""
    params = params if params is not None else DEFAULT_COST_PARAMS
    peak_flops = spec.freq_hz / params.cycles_per_flop
    return peak_flops / spec.core_bw


def phase_roofline(
    trace: Sequence[StepReport],
    spec: MachineSpec,
    n_cores: int = 4,
    params: Optional[CostParams] = None,
) -> Dict[str, RooflinePoint]:
    """Classify each phase of a work trace against a machine."""
    params = params if params is not None else DEFAULT_COST_PARAMS
    if n_cores < 1:
        raise ValueError(f"n_cores must be >= 1: {n_cores}")
    totals: Dict[str, List[float]] = {}
    for report in trace:
        for phase, work in report.phase_work.items():
            flops, nbytes = totals.setdefault(phase, [0.0, 0.0])
            totals[phase][0] += work.flops
            totals[phase][1] += (
                work.bytes_irregular * params.irregular_amplification
                + work.bytes_regular * params.regular_amplification
            )
    peak_flops = spec.freq_hz / params.cycles_per_flop
    out: Dict[str, RooflinePoint] = {}
    for phase, (flops, nbytes) in totals.items():
        if flops <= 0:
            continue
        intensity = flops / nbytes if nbytes > 0 else float("inf")
        single = min(peak_flops, intensity * spec.core_bw)
        per_core_bw = spec.socket_bw / n_cores
        parallel = min(peak_flops, intensity * per_core_bw)
        out[phase] = RooflinePoint(
            phase=phase,
            intensity=intensity,
            attainable_single=single,
            attainable_parallel=parallel,
            memory_bound_single=single < peak_flops,
            memory_bound_parallel=parallel < peak_flops,
        )
    return out


def render_roofline(
    points: Dict[str, RooflinePoint],
    spec: MachineSpec,
    params: Optional[CostParams] = None,
    width: int = 60,
) -> str:
    """ASCII roofline: phases plotted on a log-intensity axis."""
    ridge = machine_ridge_point(spec, params)
    finite = [
        p.intensity for p in points.values() if np.isfinite(p.intensity)
    ]
    if not finite:
        return "(no memory-bound phases to plot)"
    lo = min(min(finite), ridge) / 4
    hi = max(max(finite), ridge) * 4
    span = np.log10(hi / lo)

    def col(x: float) -> int:
        if not np.isfinite(x):
            return width - 1
        return int(np.clip(np.log10(x / lo) / span * (width - 1), 0, width - 1))

    lines = [
        f"roofline for {spec.name} "
        f"(ridge at {ridge:.2f} flop/byte, '^')"
    ]
    axis = [" "] * width
    axis[col(ridge)] = "^"
    for name, p in sorted(points.items(), key=lambda kv: kv[1].intensity):
        row = [" "] * width
        row[col(p.intensity)] = "*"
        tag = "memory-bound" if p.memory_bound_single else "compute-bound"
        lines.append(
            f"{name:>10} |{''.join(row)}| "
            f"{p.intensity if np.isfinite(p.intensity) else float('inf'):8.2f}"
            f" flop/B  {tag}"
        )
    lines.append(f"{'ridge':>10} |{''.join(axis)}|")
    lines.append(
        f"{'':>10}  low intensity <--------------------> high intensity"
    )
    return "\n".join(lines)
