"""Analysis and reporting: load balance, speedups, paper-style tables."""

from repro.analysis.loadbalance import (
    LoadBalanceReport,
    analyze_run,
    skew_statistics,
)
from repro.analysis.report import (
    ascii_bar_chart,
    fig2_heatmap,
    format_table,
    table1,
    table2,
    table3,
)
from repro.analysis.speedup import SpeedupCurve, fig1_sweep, replay

__all__ = [
    "LoadBalanceReport",
    "SpeedupCurve",
    "analyze_run",
    "ascii_bar_chart",
    "fig1_sweep",
    "fig2_heatmap",
    "format_table",
    "replay",
    "skew_statistics",
    "table1",
    "table2",
    "table3",
]
