"""Speedup sweeps — the Fig. 1 driver."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.concurrent import QueueMode
from repro.core.costmodel import CostParams
from repro.core.simulate import RunResult, SimulatedParallelRun, capture_trace
from repro.machine.machine import SimMachine
from repro.machine.topology import CORE_I7_920, MachineSpec


def replay(
    trace,
    n_atoms: int,
    spec: MachineSpec,
    n_threads: int,
    *,
    seed: int = 2,
    name: str = "wl",
    **kwargs,
) -> RunResult:
    """One simulated run on a fresh machine."""
    machine = SimMachine(spec, seed=seed)
    run = SimulatedParallelRun(
        trace, n_atoms, machine, n_threads, name=name, **kwargs
    )
    return run.run()


@dataclass
class SpeedupCurve:
    """Speedup vs thread count for one workload."""

    workload: str
    threads: List[int]
    seconds: List[float]

    @property
    def speedups(self) -> List[float]:
        base = self.seconds[0]
        return [base / s for s in self.seconds]

    def speedup_at(self, n: int) -> float:
        """Speedup at a specific thread count."""
        return self.speedups[self.threads.index(n)]

    def monotone_nondecreasing(self, slack: float = 0.08) -> bool:
        """Speedup should not regress much as cores are added."""
        s = self.speedups
        return all(b >= a * (1.0 - slack) for a, b in zip(s, s[1:]))


def fig1_sweep(
    workloads,
    spec: MachineSpec = CORE_I7_920,
    threads: Sequence[int] = (1, 2, 3, 4),
    steps: int = 25,
    *,
    seed: int = 2,
    params: Optional[CostParams] = None,
    queue_mode: QueueMode = QueueMode.SINGLE,
) -> Dict[str, SpeedupCurve]:
    """Reproduce Fig. 1: speedup of each workload over thread counts.

    Physics runs once per workload (:func:`capture_trace`); each thread
    count is a timing replay on a fresh simulated machine.
    """
    curves: Dict[str, SpeedupCurve] = {}
    kwargs = {}
    if params is not None:
        kwargs["params"] = params
    for wl in workloads:
        trace = capture_trace(wl, steps)
        seconds = []
        for n in threads:
            res = replay(
                trace,
                wl.system.n_atoms,
                spec,
                n,
                seed=seed,
                name=wl.name,
                queue_mode=queue_mode,
                **kwargs,
            )
            seconds.append(res.sim_seconds)
        curves[wl.name] = SpeedupCurve(
            workload=wl.name, threads=list(threads), seconds=seconds
        )
    return curves
