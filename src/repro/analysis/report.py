"""Paper-style tables and ASCII figures."""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np


def format_table(rows: Sequence[Dict[str, object]]) -> str:
    """Render a list of dict rows as an aligned ASCII table."""
    if not rows:
        return "(empty table)"
    cols = list(rows[0].keys())
    widths = {
        c: max(len(str(c)), *(len(str(r.get(c, ""))) for r in rows))
        for c in cols
    }
    def line(values):
        return "  ".join(str(v).ljust(widths[c]) for c, v in zip(cols, values))

    out = [line(cols), line(["-" * widths[c] for c in cols])]
    out.extend(line([r.get(c, "") for c in cols]) for r in rows)
    return "\n".join(out)


def table1(workloads) -> str:
    """TABLE I: Representative Benchmark Characteristics."""
    return format_table([w.characteristics() for w in workloads])


def table2(specs) -> str:
    """TABLE II: Test Machines and Their Memory Hierarchies."""
    from repro.machine.topology import Topology

    return format_table([Topology(s).table2_row() for s in specs])


def table3(rows: Sequence[Dict[str, object]]) -> str:
    """TABLE III: Differences in runtime with the same number of cores
    but different topologies.  ``rows`` carry Cores/Topology/Runtime."""
    return format_table(list(rows))


def ascii_bar_chart(
    series: Dict[str, Sequence[float]],
    x_labels: Sequence[object],
    *,
    width: int = 40,
    y_max: Optional[float] = None,
    title: str = "",
) -> str:
    """Horizontal-bar rendering of Fig. 1-style grouped data."""
    peak = y_max or max(max(v) for v in series.values())
    lines = [title] if title else []
    for name, values in series.items():
        lines.append(f"{name}:")
        for x, v in zip(x_labels, values):
            bar = "#" * max(1, int(round(v / peak * width)))
            lines.append(f"  {str(x):>4} | {bar} {v:.2f}")
    return "\n".join(lines)


def fig2_heatmap(
    residency: np.ndarray,
    thread_names: Sequence[str],
    *,
    title: str = "Worker Thread to Core Affinity",
) -> str:
    """Fig. 2-style rendering: rows = threads, cols = PUs.

    '#' = heavy residency (red in the paper), '+' moderate, '.' light.
    """
    total = residency.sum(axis=1, keepdims=True)
    total[total == 0] = 1.0
    frac = residency / total
    lines = [title, "          PU " + "".join(str(p % 10) for p in range(residency.shape[1]))]
    for name, row in zip(thread_names, frac):
        cells = []
        for f in row:
            if f >= 0.5:
                cells.append("#")
            elif f >= 0.15:
                cells.append("+")
            elif f > 0.0:
                cells.append(".")
            else:
                cells.append(" ")
        lines.append(f"{name[-12:]:>12} " + "".join(cells))
    return "\n".join(lines)
