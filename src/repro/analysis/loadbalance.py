"""Load-balance analysis (§IV).

The paper's central measurement lesson: "An equal total amount of time
spent by a worker thread in its work routines may or may not indicate
good load balance.  Imbalance on any particular iteration can disappear
when averaged over many iterations."

:func:`analyze_run` therefore separates the two quantities for a
:class:`~repro.core.simulate.RunResult`:

* *aggregate* balance — per-worker busy-time spread (what JaMON-style
  monitors show), and
* *per-iteration* balance — the distribution of per-phase latch skews
  (what actually stalls the barrier every step).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np


@dataclass
class SkewStats:
    mean: float
    p50: float
    p95: float
    max: float
    count: int


def skew_statistics(skews: Sequence[float]) -> SkewStats:
    """Summary statistics (mean/median/p95/max) of latch skews."""
    if not len(skews):
        return SkewStats(0.0, 0.0, 0.0, 0.0, 0)
    arr = np.asarray(skews, dtype=np.float64)
    return SkewStats(
        mean=float(arr.mean()),
        p50=float(np.percentile(arr, 50)),
        p95=float(np.percentile(arr, 95)),
        max=float(arr.max()),
        count=len(arr),
    )


@dataclass
class LoadBalanceReport:
    """Aggregate vs per-iteration balance for one run."""

    #: per-worker total busy seconds
    worker_busy: List[float]
    #: max/mean - 1 over worker totals: the "averaged" view
    aggregate_imbalance: float
    #: per-phase latch skew statistics: the per-iteration truth
    phase_skews: Dict[str, SkewStats]
    #: total seconds lost to barrier waits (sum of skews)
    barrier_loss: float
    steps: int

    def hides_imbalance(self, phase: str = "forces") -> bool:
        """True when aggregate balance looks fine (< 10% spread) while
        per-iteration skew is significant (> 15% of the mean phase
        work) — the paper's 'overly simplistic view' case."""
        stats = self.phase_skews.get(phase)
        if stats is None or stats.count == 0 or not self.worker_busy:
            return False
        mean_phase = max(
            sum(self.worker_busy) / max(stats.count, 1), 1e-12
        )
        return (
            self.aggregate_imbalance < 0.10
            and stats.p95 / mean_phase > 0.15
        )

    def render(self) -> str:
        """Human-readable balance report (both views)."""
        lines = ["Per-worker busy seconds (aggregate view):"]
        for i, b in enumerate(self.worker_busy):
            lines.append(f"  worker {i}: {b * 1e3:9.3f} ms")
        lines.append(
            f"aggregate imbalance (max/mean - 1): "
            f"{self.aggregate_imbalance * 100:.1f}%"
        )
        lines.append("Per-phase latch skew (per-iteration view):")
        for phase, s in sorted(self.phase_skews.items()):
            lines.append(
                f"  {phase:<10} mean {s.mean * 1e6:8.1f} us   "
                f"p95 {s.p95 * 1e6:8.1f} us   max {s.max * 1e6:8.1f} us"
            )
        lines.append(
            f"total barrier loss: {self.barrier_loss * 1e3:.3f} ms "
            f"over {self.steps} steps"
        )
        return "\n".join(lines)


def analyze_run(result) -> LoadBalanceReport:
    """Build a load-balance report from a RunResult."""
    busy = list(result.worker_busy)
    mean = np.mean(busy) if busy else 0.0
    aggregate = float(max(busy) / mean - 1.0) if mean > 0 else 0.0
    phase_skews = {
        phase: skew_statistics(skews)
        for phase, skews in result.phase_skews.items()
    }
    barrier_loss = float(
        sum(sum(skews) for skews in result.phase_skews.values())
    )
    return LoadBalanceReport(
        worker_busy=busy,
        aggregate_imbalance=aggregate,
        phase_skews=phase_skews,
        barrier_loss=barrier_loss,
        steps=result.steps,
    )
