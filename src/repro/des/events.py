"""Waitable request objects for DES processes.

A process communicates with the kernel by ``yield``-ing *requests*.
Every request implements the informal protocol

``_subscribe(sim, process)``
    Called by the kernel when the request is yielded.  The request must
    arrange for ``process._resume(value)`` (or ``process._fail(exc)``) to
    be called exactly once, now or in the simulated future.

The concrete requests defined here are:

:class:`Timeout`
    Resume after a fixed simulated delay.
:class:`Event`
    A one-shot broadcast signal; every waiter resumes when it fires.
:class:`AllOf` / :class:`AnyOf`
    Composite waits over several events.
"""

from __future__ import annotations

from repro.des.errors import DesError


class Timeout:
    """Resume the yielding process after ``delay`` units of simulated time.

    The optional ``value`` is returned from the ``yield`` expression.
    """

    __slots__ = ("delay", "value")

    def __init__(self, delay: float, value=None):
        if delay < 0:
            raise ValueError(f"negative timeout: {delay}")
        self.delay = float(delay)
        self.value = value

    def _subscribe(self, sim, process) -> None:
        if sim._subscribers:
            sim.emit("timeout", process.name, ("delay", self.delay))
        sim._schedule(self.delay, process._resume, self.value)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Timeout({self.delay})"


class Event:
    """A one-shot signal.

    Processes wait on an event by yielding it.  :meth:`fire` releases every
    current and future waiter with the fired value; :meth:`fail` releases
    them by raising the given exception inside their generator.  Firing an
    already-fired event is an error (one-shot semantics); use a fresh Event
    per round for cyclic constructs.
    """

    __slots__ = ("name", "_fired", "_failed", "_value", "_waiters")

    def __init__(self, name: str = ""):
        self.name = name
        self._fired = False
        self._failed = False
        self._value = None
        self._waiters: list = []

    @property
    def fired(self) -> bool:
        """True once :meth:`fire` or :meth:`fail` has been called."""
        return self._fired

    @property
    def value(self):
        """The value passed to :meth:`fire` (None until fired)."""
        return self._value

    def fire(self, value=None, *, sim=None) -> None:
        """Mark the event fired and resume all waiters.

        If ``sim`` is given the resumptions are scheduled at the current
        simulated time (deterministic FIFO order); otherwise waiters are
        resumed synchronously, which is only safe from kernel callbacks.
        """
        if self._fired:
            raise DesError(f"event {self.name!r} fired twice")
        self._fired = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            if sim is not None:
                sim._schedule(0.0, proc._resume, value)
            else:
                proc._resume(value)

    def fail(self, exc: BaseException, *, sim=None) -> None:
        """Mark the event failed; waiters get ``exc`` raised at the yield."""
        if self._fired:
            raise DesError(f"event {self.name!r} fired twice")
        self._fired = True
        self._failed = True
        self._value = exc
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            if sim is not None:
                sim._schedule(0.0, proc._fail, exc)
            else:
                proc._fail(exc)

    def _subscribe(self, sim, process) -> None:
        if self._fired:
            if self._failed:
                sim._schedule(0.0, process._fail, self._value)
            else:
                sim._schedule(0.0, process._resume, self._value)
        else:
            self._waiters.append(process)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "fired" if self._fired else f"{len(self._waiters)} waiters"
        return f"Event({self.name!r}, {state})"


class AllOf:
    """Wait until every one of ``events`` has fired.

    The yield returns a list of the events' values in argument order.
    """

    __slots__ = ("events",)

    def __init__(self, events):
        self.events = list(events)

    def _subscribe(self, sim, process) -> None:
        pending = [e for e in self.events if not e.fired]
        if not pending:
            sim._schedule(
                0.0, process._resume, [e.value for e in self.events]
            )
            return
        remaining = {"n": len(pending)}

        def on_fire(_value, _remaining=remaining):
            _remaining["n"] -= 1
            if _remaining["n"] == 0:
                process._resume([e.value for e in self.events])

        for event in pending:
            event._waiters.append(_CallbackWaiter(on_fire, process._fail))


class AnyOf:
    """Wait until at least one of ``events`` has fired.

    The yield returns the ``(index, value)`` of the first event to fire.
    """

    __slots__ = ("events",)

    def __init__(self, events):
        self.events = list(events)

    def _subscribe(self, sim, process) -> None:
        for i, event in enumerate(self.events):
            if event.fired:
                sim._schedule(0.0, process._resume, (i, event.value))
                return
        done = {"done": False}

        def make(i):
            def on_fire(value):
                if not done["done"]:
                    done["done"] = True
                    process._resume((i, value))

            return on_fire

        def on_fail(exc):
            if not done["done"]:
                done["done"] = True
                process._fail(exc)

        for i, event in enumerate(self.events):
            event._waiters.append(_CallbackWaiter(make(i), on_fail))


class _CallbackWaiter:
    """Adapter so plain callbacks can sit in an Event's waiter list."""

    __slots__ = ("_resume", "_fail")

    def __init__(self, resume, fail):
        self._resume = resume
        self._fail = fail
