"""Wait-for-graph construction and cycle diagnosis for deadlocks.

When :meth:`Simulator.run` drains its event queue with live non-daemon
processes remaining, something lost a wakeup.  The classic — and most
actionable — case is a lock cycle: process A holds lock L1 and waits on
L2 while process B holds L2 and waits on L1.  This module reconstructs
the wait-for graph from each stuck process's pending request (``p
_waiting_on``) and the locks' holder records, finds a cycle if one
exists, and renders it as an owner/waiter chain so the resulting
:class:`~repro.des.errors.SimulationDeadlock` names the culprits
instead of just counting them.

Processes blocked on resources with no owner (events, empty stores,
barriers) appear in the report as terminal waits — they cannot form a
cycle edge but are listed with what they wait on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


def _request_resource(request) -> Tuple[str, Optional[object]]:
    """(human description, semaphore-or-None) for a pending request."""
    sem = getattr(request, "sem", None)
    if sem is not None:
        kind = type(sem).__name__.lower()
        return f"{kind} {sem.name!r}", sem
    store = getattr(request, "store", None)
    if store is not None:
        return f"store {store.name!r}", None
    barrier = getattr(request, "barrier", None)
    if barrier is not None:
        return f"barrier {barrier.name!r}", None
    name = getattr(request, "name", "")
    label = type(request).__name__
    return (f"{label} {name!r}" if name else label), None


def wait_for_edges(processes) -> Dict[object, List[Tuple[str, object]]]:
    """Map each waiting process to ``[(resource description, owner)]``.

    Only lock/semaphore waits produce owner edges; every process still
    gets an entry (possibly empty) so the renderer can describe what it
    is stuck on.
    """
    edges: Dict[object, List[Tuple[str, object]]] = {}
    for proc in processes:
        desc_owners: List[Tuple[str, object]] = []
        request = getattr(proc, "_waiting_on", None)
        if request is not None:
            desc, sem = _request_resource(request)
            if sem is not None:
                for owner in sem.owners():
                    if owner is not proc:
                        desc_owners.append((desc, owner))
        edges[proc] = desc_owners
    return edges


def find_cycle(
    edges: Dict[object, List[Tuple[str, object]]],
) -> Optional[List[Tuple[object, str, object]]]:
    """First wait-for cycle as ``[(waiter, resource, owner), ...]``.

    Deterministic: processes and their edges are explored in the order
    they appear in ``edges`` (insertion order = spawn order).
    """
    done: set = set()

    def dfs(node, chain, on_chain):
        # on_chain[id(p)] == index in `chain` of p's outgoing edge
        on_chain[id(node)] = len(chain)
        for desc, owner in edges.get(node, []):
            if id(owner) in on_chain:
                return chain[on_chain[id(owner)]:] + [(node, desc, owner)]
            if id(owner) in done or owner not in edges:
                continue
            chain.append((node, desc, owner))
            found = dfs(owner, chain, on_chain)
            if found is not None:
                return found
            chain.pop()
        del on_chain[id(node)]
        done.add(id(node))
        return None

    for root in edges:
        if id(root) not in done:
            found = dfs(root, [], {})
            if found is not None:
                return found
    return None


def render_cycle(cycle: List[Tuple[object, str, object]]) -> str:
    """``a -waits-on-> lock 'l2' -held-by-> b -waits-on-> ...`` chain."""
    parts: List[str] = []
    for waiter, resource, owner in cycle:
        parts.append(
            f"{waiter.name} -waits-on-> {resource} -held-by-> {owner.name}"
        )
    return "; ".join(parts)


def describe_waits(processes) -> List[str]:
    """One ``name (waiting on X)`` line fragment per stuck process."""
    out = []
    for proc in processes:
        request = getattr(proc, "_waiting_on", None)
        if request is None:
            out.append(proc.name)
        else:
            desc, _sem = _request_resource(request)
            out.append(f"{proc.name} (waiting on {desc})")
    return out


def diagnose(processes) -> Tuple[List[str], Optional[str]]:
    """(per-process wait descriptions, rendered cycle or None)."""
    procs = sorted(processes, key=lambda p: p.name)
    edges = wait_for_edges(procs)
    cycle = find_cycle(edges)
    return describe_waits(procs), render_cycle(cycle) if cycle else None
