"""Process: a generator-driven simulated thread of control."""

from __future__ import annotations

from typing import Generator

from repro.des.errors import DesError, Interrupted
from repro.des.events import Event


class Process:
    """Wraps a generator and steps it through the simulation.

    Created via :meth:`Simulator.spawn`.  The generator yields request
    objects (see :mod:`repro.des.events` and :mod:`repro.des.resources`);
    each ``yield`` suspends the process until the request completes, and
    the request's value becomes the result of the yield expression.

    A Process is itself waitable: yielding a process from another process
    suspends the waiter until the target terminates, returning the
    target's return value (``StopIteration.value``).
    """

    __slots__ = (
        "sim",
        "name",
        "daemon",
        "_gen",
        "_send",
        "terminated",
        "_alive",
        "_waiting_on",
    )

    def __init__(self, sim, gen: Generator, name: str = "", daemon: bool = False):
        if not hasattr(gen, "send"):
            raise TypeError(
                f"process body must be a generator, got {type(gen).__name__}"
            )
        self.sim = sim
        self.name = name or getattr(gen, "__name__", "process")
        #: daemon processes may outlive the simulation (excluded from the
        #: deadlock check), like dispatcher loops waiting for work forever
        self.daemon = daemon
        self._gen = gen
        self._send = gen.send  # bound once; _resume runs per event
        #: fires with the generator's return value when it finishes
        self.terminated = Event(name=f"{self.name}.terminated")
        self._alive = True
        self._waiting_on = None

    @property
    def alive(self) -> bool:
        """True until the generator returns or raises."""
        return self._alive

    # -- kernel-facing -------------------------------------------------

    def _resume(self, value=None) -> None:
        if not self._alive:  # e.g. resumed after an interrupt killed us
            return
        self._waiting_on = None
        sim = self.sim
        if sim._subscribers:
            sim.emit("process.resume", self.name)
        try:
            request = self._send(value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except BaseException as exc:
            self._crash(exc)
            raise
        self._dispatch(request)

    def _fail(self, exc: BaseException) -> None:
        """Raise ``exc`` inside the generator at its current yield point."""
        if not self._alive:
            return
        self._waiting_on = None
        try:
            request = self._gen.throw(exc)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except BaseException as raised:
            if raised is exc:
                # Unhandled: the process dies with this exception.
                self._crash(raised)
                raise
            self._crash(raised)
            raise
        self._dispatch(request)

    def _dispatch(self, request) -> None:
        self._waiting_on = request
        try:
            subscribe = request._subscribe
        except AttributeError:
            raise DesError(
                f"process {self.name!r} yielded non-request "
                f"{type(request).__name__}: {request!r}"
            ) from None
        # membership in sim._live is managed at spawn/_finish/_crash;
        # re-adding on every yield was pure hot-loop overhead
        sim = self.sim
        if sim._subscribers:
            sim.emit(
                "process.block", self.name,
                ("request", type(request).__name__),
            )
        subscribe(sim, self)

    def _finish(self, value) -> None:
        self._alive = False
        self.sim._live.discard(self)
        if self.sim._subscribers:
            self.sim.emit("process.end", self.name)
        self.terminated.fire(value, sim=self.sim)

    def _crash(self, exc: BaseException) -> None:
        self._alive = False
        self.sim._live.discard(self)
        if self.sim._subscribers:
            self.sim.emit(
                "process.end", self.name, ("error", type(exc).__name__)
            )
        if self.terminated._waiters:
            self.terminated.fail(exc, sim=self.sim)
        else:
            self.terminated._fired = True
            self.terminated._failed = True
            self.terminated._value = exc

    # -- user-facing ---------------------------------------------------

    def interrupt(self, cause=None) -> None:
        """Throw :class:`Interrupted` into the process at its yield point.

        A process blocked on a request simply abandons it; requests that
        hold queue slots (locks) tolerate dead waiters.
        """
        if not self._alive:
            return
        self.sim._schedule(0.0, self._fail, Interrupted(cause))

    # Make a process waitable (join): yielding it waits for terminated.
    def _subscribe(self, sim, process) -> None:
        self.terminated._subscribe(sim, process)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "alive" if self._alive else "dead"
        return f"Process({self.name!r}, {state})"
