"""Typed trace events for the kernel event bus.

The :class:`~repro.des.simulator.Simulator` carries a subscriber list;
when at least one subscriber is attached, instrumented points in the
kernel (process lifecycle, locks, timeouts), the scheduler, and the
sim-concurrent runtime emit :class:`TraceEvent` records.  With no
subscriber every emission site reduces to one truthiness check of an
empty list, and *nothing about simulated time changes either way*:
observation is purely passive, which is the whole point — the simulated
machine is the one "tool" with a zero observer effect (§IV).

Event payloads must be deterministic: emitters never include memory
addresses (``id()``), wall-clock times, or unordered-dict iteration
products, so two identical runs serialize to byte-identical streams
(guarded by ``tests/obs/test_bus.py``).
"""

from __future__ import annotations

from typing import Iterable, Tuple


class TraceEvent:
    """One kernel event: what happened, to whom, at what simulated time.

    ``args`` is a tuple of ``(key, value)`` pairs rather than a dict so
    the serialization order is fixed by the emitter, keeping streams
    byte-identical across runs.
    """

    __slots__ = ("time", "kind", "subject", "args")

    def __init__(
        self,
        time: float,
        kind: str,
        subject: str,
        args: Tuple[Tuple[str, object], ...] = (),
    ):
        self.time = time
        self.kind = kind
        self.subject = subject
        self.args = args

    def arg(self, key: str, default=None):
        """Look up one payload field by key."""
        for k, v in self.args:
            if k == key:
                return v
        return default

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kv = " ".join(f"{k}={v!r}" for k, v in self.args)
        return f"TraceEvent({self.time!r}, {self.kind}, {self.subject!r}, {kv})"


def serialize_events(events: Iterable[TraceEvent]) -> bytes:
    """Canonical one-line-per-event byte encoding of an event stream.

    Uses ``repr`` for floats (exact round-trip), so two streams are
    equal iff every event matches bit-for-bit — the determinism tests
    compare these bytes directly.
    """
    lines = []
    for e in events:
        kv = " ".join(f"{k}={v!r}" for k, v in e.args)
        lines.append(f"{e.time!r}\t{e.kind}\t{e.subject}\t{kv}")
    return ("\n".join(lines) + "\n").encode("utf-8") if lines else b""
