"""Deterministic discrete-event simulation (DES) kernel.

This is the foundation of the simulated multicore machine
(:mod:`repro.machine`).  It is a small, dependency-free, simpy-style
kernel: *processes* are Python generators that ``yield`` request objects
(timeouts, event waits, lock acquisitions) and are resumed by the
:class:`~repro.des.simulator.Simulator` when the request completes.

The kernel is strictly deterministic: simultaneous events are ordered by
a monotonically increasing sequence number, so a simulation with the
same inputs always produces the same trace.

Example
-------
>>> from repro.des import Simulator, Timeout
>>> sim = Simulator()
>>> log = []
>>> def worker(name, delay):
...     yield Timeout(delay)
...     log.append((sim.now, name))
>>> _ = sim.spawn(worker("a", 2.0))
>>> _ = sim.spawn(worker("b", 1.0))
>>> sim.run()
>>> log
[(1.0, 'b'), (2.0, 'a')]
"""

from repro.des.deadlock import diagnose, find_cycle, wait_for_edges
from repro.des.errors import (
    DeadlockError,
    DesError,
    Interrupted,
    SimulationDeadlock,
    SyncTimeout,
)
from repro.des.events import AllOf, AnyOf, Event, Timeout
from repro.des.process import Process
from repro.des.resources import FifoStore, Lock, Semaphore
from repro.des.simulator import Simulator, Timer
from repro.des.trace import TraceEvent, serialize_events

__all__ = [
    "AllOf",
    "AnyOf",
    "DeadlockError",
    "DesError",
    "Event",
    "FifoStore",
    "Interrupted",
    "Lock",
    "Process",
    "Semaphore",
    "SimulationDeadlock",
    "Simulator",
    "SyncTimeout",
    "Timeout",
    "Timer",
    "TraceEvent",
    "diagnose",
    "find_cycle",
    "serialize_events",
    "wait_for_edges",
]
