"""The DES event loop."""

from __future__ import annotations

import heapq
from typing import Callable, Generator, Optional

from repro.des.errors import SimulationDeadlock
from repro.des.process import Process
from repro.des.trace import TraceEvent


class Timer:
    """Handle for a cancellable scheduled callback.

    The heap entry of a cancelled timer is skipped *without advancing
    simulated time*, so a timeout that lost its race (e.g. a latch wait
    that completed in time) does not drag the end of the simulation out
    to its expiry horizon.

    Cancelled entries ("tombstones") are dropped lazily when they reach
    the head of the heap, and compacted wholesale when they outnumber
    live entries (see :meth:`Simulator._compact`) — long chaos runs arm
    and cancel timed waits constantly, and without compaction the dead
    entries would bloat the heap and slow every ``heappush``.
    """

    __slots__ = ("fn", "cancelled", "_sim")

    def __init__(self, fn: Callable, sim: "Optional[Simulator]" = None):
        self.fn = fn
        self.cancelled = False
        #: owning simulator while our heap entry is pending; cleared on
        #: fire so a late cancel() cannot skew the tombstone count
        self._sim = sim

    def cancel(self) -> None:
        """Disarm the timer; its heap entry is lazily discarded."""
        if self.cancelled:
            return
        self.cancelled = True
        sim = self._sim
        if sim is not None:
            sim._tombstones += 1
            sim._maybe_compact()

    def __call__(self, value) -> None:
        if not self.cancelled:
            self._sim = None  # entry consumed; cancel() is now a no-op
            self.fn(value)


class Simulator:
    """Deterministic discrete-event simulator.

    Maintains simulated time (:attr:`now`, an arbitrary unit — the machine
    model uses seconds) and a heap of ``(time, seq, callback, value)``
    entries.  Simultaneous events run in scheduling order (``seq`` is a
    monotone counter), so runs are exactly reproducible.

    The simulator is also the kernel's **event bus**: observers call
    :meth:`subscribe` and receive every :class:`TraceEvent` emitted by
    the kernel, the scheduler, and the sim-concurrent runtime.  With no
    subscriber attached every emission site is one truthiness check of
    :attr:`_subscribers`, and tracing never costs simulated time.
    """

    #: compact the heap when cancelled-timer tombstones exceed this
    #: fraction of its entries (and the heap is big enough to matter)
    COMPACT_FRACTION = 0.5
    COMPACT_MIN_TOMBSTONES = 64

    def __init__(self):
        self.now: float = 0.0
        self._heap: list = []
        self._seq: int = 0
        self._live: set = set()
        self.event_count: int = 0
        #: high-water mark of the event heap (live entries + tombstones)
        self.heap_peak: int = 0
        #: cancelled-timer entries still sitting in the heap
        self._tombstones: int = 0
        #: number of wholesale tombstone compactions performed
        self.compactions: int = 0
        #: event-bus subscribers; emission sites check truthiness inline,
        #: so an empty list is the zero-overhead "tracing off" fast path
        self._subscribers: list = []

    # -- event bus -------------------------------------------------------

    @property
    def traced(self) -> bool:
        """True when at least one trace subscriber is attached."""
        return bool(self._subscribers)

    def subscribe(self, callback: Callable[[TraceEvent], None]) -> Callable:
        """Attach a trace subscriber; returns ``callback`` for symmetry
        with :meth:`unsubscribe`."""
        self._subscribers.append(callback)
        return callback

    def unsubscribe(self, callback: Callable[[TraceEvent], None]) -> None:
        """Detach a previously subscribed trace callback."""
        self._subscribers.remove(callback)

    def emit(self, kind: str, subject: str, *args) -> None:
        """Deliver one trace event to every subscriber.

        ``args`` are ``(key, value)`` pairs in emitter-fixed order.  Hot
        paths guard the call with ``if sim._subscribers:`` so the
        traced-off cost is a single attribute check; with subscribers
        attached the one :class:`TraceEvent` instance is shared by all
        of them (subscribers must treat events as immutable).
        """
        subscribers = self._subscribers
        if not subscribers:
            return
        event = TraceEvent(self.now, kind, subject, args)
        for fn in subscribers:
            fn(event)

    # -- scheduling ------------------------------------------------------

    def _schedule(self, delay: float, callback, value=None) -> None:
        """Schedule ``callback(value)`` at ``now + delay`` (kernel use)."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        self._seq += 1
        heap = self._heap
        heapq.heappush(heap, (self.now + delay, self._seq, callback, value))
        if len(heap) > self.heap_peak:
            self.heap_peak = len(heap)

    def call_at(self, time: float, callback, value=None) -> None:
        """Schedule ``callback(value)`` at an absolute simulated time."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        self._schedule(time - self.now, callback, value)

    def timer(self, delay: float, callback, value=None) -> Timer:
        """Schedule a *cancellable* ``callback(value)`` at ``now + delay``.

        Returns the :class:`Timer` handle; ``handle.cancel()`` disarms
        it, and a cancelled entry is dropped from the heap without
        advancing :attr:`now` when its turn comes."""
        handle = Timer(callback, self)
        self._schedule(delay, handle, value)
        return handle

    def spawn(self, gen: Generator, name: str = "", daemon: bool = False) -> Process:
        """Create a :class:`Process` from a generator and start it at the
        current simulated time.  Daemon processes are excluded from the
        deadlock check (they are expected to wait forever)."""
        proc = Process(self, gen, name=name, daemon=daemon)
        self._live.add(proc)
        if self._subscribers:
            self.emit("process.spawn", proc.name, ("daemon", daemon))
        self._schedule(0.0, proc._resume, None)
        return proc

    # -- the heap --------------------------------------------------------
    #
    # All cancelled-timer handling funnels through _peek_live/_pop_live,
    # so run()/step()/peek() cannot drift apart in how they treat
    # tombstones (they used to be three hand-copied drain loops).

    def _peek_live(self):
        """Head entry of the heap, dropping cancelled-timer tombstones.

        Mutates the heap (tombstones at the head are discarded) but never
        removes a live entry."""
        heap = self._heap
        while heap:
            head = heap[0]
            callback = head[2]
            if type(callback) is Timer and callback.cancelled:
                heapq.heappop(heap)
                self._tombstones -= 1
                continue
            return head
        return None

    def _pop_live(self):
        """Pop the next live ``(time, seq, callback, value)`` entry, or
        None when the heap holds nothing but tombstones."""
        head = self._peek_live()
        if head is None:
            return None
        heapq.heappop(self._heap)
        return head

    def _maybe_compact(self) -> None:
        """Drop cancelled-timer tombstones wholesale once they exceed
        :attr:`COMPACT_FRACTION` of the heap.

        Event order is unchanged: surviving entries keep their
        ``(time, seq)`` keys, and ``heapify`` restores the invariant.
        The heap list is rebuilt *in place* so aliases held by a running
        :meth:`run` loop stay valid.
        """
        tombstones = self._tombstones
        heap = self._heap
        if (
            tombstones < self.COMPACT_MIN_TOMBSTONES
            or tombstones < len(heap) * self.COMPACT_FRACTION
        ):
            return
        heap[:] = [
            entry
            for entry in heap
            if not (type(entry[2]) is Timer and entry[2].cancelled)
        ]
        heapq.heapify(heap)
        self._tombstones = 0
        self.compactions += 1

    def _raise_if_stuck(self) -> None:
        """Diagnose and raise when live non-daemon processes can never
        be woken (the event queue has fully drained)."""
        stuck = [p for p in self._live if not p.daemon]
        if stuck:
            from repro.des.deadlock import diagnose

            waits, cycle = diagnose(stuck)
            raise SimulationDeadlock(waits, cycle=cycle)

    # -- running ---------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Run until the event queue drains or simulated time reaches
        ``until``.  Returns the final simulated time.

        Raises :class:`SimulationDeadlock` if live non-daemon processes
        remain when the queue drains, since that always indicates a lost
        wakeup (e.g. a barrier that can never trip) — **including** when
        an ``until`` bound was given: once the heap is empty nothing can
        ever wake a blocked process, so a bounded run that drained early
        has deadlocked just the same, and returning silently would mask
        exactly the bugs :mod:`repro.des.deadlock` diagnoses.
        """
        # the tombstone drain is inlined from _pop_live — this loop runs
        # once per simulated event and the two extra call frames were
        # measurable; the logic must stay in lockstep with _peek_live
        heap = self._heap
        heappop = heapq.heappop
        count = 0
        try:
            if until is None:
                while heap:
                    entry = heap[0]
                    callback = entry[2]
                    if type(callback) is Timer and callback.cancelled:
                        heappop(heap)
                        self._tombstones -= 1
                        continue
                    heappop(heap)
                    self.now = entry[0]
                    count += 1
                    callback(entry[3])
            else:
                while heap:
                    entry = heap[0]
                    callback = entry[2]
                    if type(callback) is Timer and callback.cancelled:
                        heappop(heap)
                        self._tombstones -= 1
                        continue
                    if entry[0] > until:
                        # not due yet: left on the heap untouched
                        self.now = until
                        return self.now
                    heappop(heap)
                    self.now = entry[0]
                    count += 1
                    callback(entry[3])
        finally:
            self.event_count += count
        self._raise_if_stuck()
        if until is not None and until > self.now:
            self.now = until
        return self.now

    def step(self) -> bool:
        """Process a single event; returns False when the queue is empty.

        Cancelled timers are drained silently (they advance nothing)."""
        entry = self._pop_live()
        if entry is None:
            return False
        self.now = entry[0]
        self.event_count += 1
        entry[2](entry[3])
        return True

    def peek(self) -> Optional[float]:
        """Time of the next pending event, or None.

        Pure with respect to simulated state, but *not* with respect to
        the heap: cancelled-timer tombstones at the head are discarded
        as a side effect (observable only through ``len(sim._heap)``).
        No live entry is ever removed, and :attr:`now` never changes.
        """
        head = self._peek_live()
        return head[0] if head is not None else None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Simulator(now={self.now:.6g}, pending={len(self._heap)}, "
            f"live={len(self._live)})"
        )
