"""The DES event loop."""

from __future__ import annotations

import heapq
from typing import Generator, Optional

from repro.des.errors import SimulationDeadlock
from repro.des.process import Process


class Simulator:
    """Deterministic discrete-event simulator.

    Maintains simulated time (:attr:`now`, an arbitrary unit — the machine
    model uses seconds) and a heap of ``(time, seq, callback, value)``
    entries.  Simultaneous events run in scheduling order (``seq`` is a
    monotone counter), so runs are exactly reproducible.
    """

    def __init__(self):
        self.now: float = 0.0
        self._heap: list = []
        self._seq: int = 0
        self._live: set = set()
        self.event_count: int = 0

    # -- scheduling ------------------------------------------------------

    def _schedule(self, delay: float, callback, value=None) -> None:
        """Schedule ``callback(value)`` at ``now + delay`` (kernel use)."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, callback, value))

    def call_at(self, time: float, callback, value=None) -> None:
        """Schedule ``callback(value)`` at an absolute simulated time."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        self._schedule(time - self.now, callback, value)

    def spawn(self, gen: Generator, name: str = "", daemon: bool = False) -> Process:
        """Create a :class:`Process` from a generator and start it at the
        current simulated time.  Daemon processes are excluded from the
        deadlock check (they are expected to wait forever)."""
        proc = Process(self, gen, name=name, daemon=daemon)
        self._live.add(proc)
        self._schedule(0.0, proc._resume, None)
        return proc

    # -- running ---------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Run until the event queue drains or simulated time reaches
        ``until``.  Returns the final simulated time.

        Raises :class:`SimulationDeadlock` if live processes remain when
        the queue drains and no ``until`` bound was given, since that
        always indicates a lost wakeup (e.g. a barrier that can never
        trip).
        """
        while self._heap:
            time, _seq, callback, value = heapq.heappop(self._heap)
            if until is not None and time > until:
                heapq.heappush(self._heap, (time, _seq, callback, value))
                self.now = until
                return self.now
            self.now = time
            self.event_count += 1
            callback(value)
        if until is None:
            stuck = [p.name for p in self._live if not p.daemon]
            if stuck:
                raise SimulationDeadlock(stuck)
        if until is not None:
            self.now = max(self.now, until) if not self._heap else self.now
        return self.now

    def step(self) -> bool:
        """Process a single event; returns False when the queue is empty."""
        if not self._heap:
            return False
        time, _seq, callback, value = heapq.heappop(self._heap)
        self.now = time
        self.event_count += 1
        callback(value)
        return True

    def peek(self) -> Optional[float]:
        """Time of the next pending event, or None."""
        return self._heap[0][0] if self._heap else None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Simulator(now={self.now:.6g}, pending={len(self._heap)}, "
            f"live={len(self._live)})"
        )
