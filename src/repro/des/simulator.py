"""The DES event loop."""

from __future__ import annotations

import heapq
from typing import Callable, Generator, Optional

from repro.des.errors import SimulationDeadlock
from repro.des.process import Process
from repro.des.trace import TraceEvent


class Timer:
    """Handle for a cancellable scheduled callback.

    The heap entry of a cancelled timer is skipped *without advancing
    simulated time*, so a timeout that lost its race (e.g. a latch wait
    that completed in time) does not drag the end of the simulation out
    to its expiry horizon.
    """

    __slots__ = ("fn", "cancelled")

    def __init__(self, fn: Callable):
        self.fn = fn
        self.cancelled = False

    def cancel(self) -> None:
        """Disarm the timer; its heap entry is lazily discarded."""
        self.cancelled = True

    def __call__(self, value) -> None:
        if not self.cancelled:
            self.fn(value)


class Simulator:
    """Deterministic discrete-event simulator.

    Maintains simulated time (:attr:`now`, an arbitrary unit — the machine
    model uses seconds) and a heap of ``(time, seq, callback, value)``
    entries.  Simultaneous events run in scheduling order (``seq`` is a
    monotone counter), so runs are exactly reproducible.

    The simulator is also the kernel's **event bus**: observers call
    :meth:`subscribe` and receive every :class:`TraceEvent` emitted by
    the kernel, the scheduler, and the sim-concurrent runtime.  With no
    subscriber attached every emission site is one truthiness check of
    :attr:`_subscribers`, and tracing never costs simulated time.
    """

    def __init__(self):
        self.now: float = 0.0
        self._heap: list = []
        self._seq: int = 0
        self._live: set = set()
        self.event_count: int = 0
        #: event-bus subscribers; emission sites check truthiness inline,
        #: so an empty list is the zero-overhead "tracing off" fast path
        self._subscribers: list = []

    # -- event bus -------------------------------------------------------

    @property
    def traced(self) -> bool:
        """True when at least one trace subscriber is attached."""
        return bool(self._subscribers)

    def subscribe(self, callback: Callable[[TraceEvent], None]) -> Callable:
        """Attach a trace subscriber; returns ``callback`` for symmetry
        with :meth:`unsubscribe`."""
        self._subscribers.append(callback)
        return callback

    def unsubscribe(self, callback: Callable[[TraceEvent], None]) -> None:
        """Detach a previously subscribed trace callback."""
        self._subscribers.remove(callback)

    def emit(self, kind: str, subject: str, *args) -> None:
        """Deliver one trace event to every subscriber.

        ``args`` are ``(key, value)`` pairs in emitter-fixed order.  Hot
        paths guard the call with ``if sim._subscribers:`` so the
        traced-off cost is a single attribute check.
        """
        if not self._subscribers:
            return
        event = TraceEvent(self.now, kind, subject, args)
        for fn in self._subscribers:
            fn(event)

    # -- scheduling ------------------------------------------------------

    def _schedule(self, delay: float, callback, value=None) -> None:
        """Schedule ``callback(value)`` at ``now + delay`` (kernel use)."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, callback, value))

    def call_at(self, time: float, callback, value=None) -> None:
        """Schedule ``callback(value)`` at an absolute simulated time."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        self._schedule(time - self.now, callback, value)

    def timer(self, delay: float, callback, value=None) -> Timer:
        """Schedule a *cancellable* ``callback(value)`` at ``now + delay``.

        Returns the :class:`Timer` handle; ``handle.cancel()`` disarms
        it, and a cancelled entry is dropped from the heap without
        advancing :attr:`now` when its turn comes."""
        handle = Timer(callback)
        self._schedule(delay, handle, value)
        return handle

    def spawn(self, gen: Generator, name: str = "", daemon: bool = False) -> Process:
        """Create a :class:`Process` from a generator and start it at the
        current simulated time.  Daemon processes are excluded from the
        deadlock check (they are expected to wait forever)."""
        proc = Process(self, gen, name=name, daemon=daemon)
        self._live.add(proc)
        if self._subscribers:
            self.emit("process.spawn", proc.name, ("daemon", daemon))
        self._schedule(0.0, proc._resume, None)
        return proc

    # -- running ---------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Run until the event queue drains or simulated time reaches
        ``until``.  Returns the final simulated time.

        Raises :class:`SimulationDeadlock` if live processes remain when
        the queue drains and no ``until`` bound was given, since that
        always indicates a lost wakeup (e.g. a barrier that can never
        trip).
        """
        while self._heap:
            time, _seq, callback, value = heapq.heappop(self._heap)
            if type(callback) is Timer and callback.cancelled:
                continue
            if until is not None and time > until:
                heapq.heappush(self._heap, (time, _seq, callback, value))
                self.now = until
                return self.now
            self.now = time
            self.event_count += 1
            callback(value)
        if until is None:
            stuck = [p for p in self._live if not p.daemon]
            if stuck:
                from repro.des.deadlock import diagnose

                waits, cycle = diagnose(stuck)
                raise SimulationDeadlock(waits, cycle=cycle)
        if until is not None:
            self.now = max(self.now, until) if not self._heap else self.now
        return self.now

    def step(self) -> bool:
        """Process a single event; returns False when the queue is empty.

        Cancelled timers are drained silently (they advance nothing)."""
        while self._heap:
            time, _seq, callback, value = heapq.heappop(self._heap)
            if type(callback) is Timer and callback.cancelled:
                continue
            self.now = time
            self.event_count += 1
            callback(value)
            return True
        return False

    def peek(self) -> Optional[float]:
        """Time of the next pending event, or None."""
        while self._heap:
            head = self._heap[0]
            if type(head[2]) is Timer and head[2].cancelled:
                heapq.heappop(self._heap)
                continue
            return head[0]
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Simulator(now={self.now:.6g}, pending={len(self._heap)}, "
            f"live={len(self._live)})"
        )
