"""Exception types raised by the DES kernel."""

from typing import Optional


class DesError(Exception):
    """Base class for all kernel errors."""


class SimulationDeadlock(DesError):
    """Raised by :meth:`Simulator.run` when live processes remain but the
    event queue is empty (every remaining process waits on something that
    can no longer happen).

    ``waiting`` lists the stuck processes, annotated with the resource
    each one waits on when known.  ``cycle`` carries the rendered
    wait-for cycle (lock owners and waiting processes) when the
    diagnosis found one — the classic two-lock deadlock reads::

        wait-for cycle: a -waits-on-> lock 'l2' -held-by-> b;
        b -waits-on-> lock 'l1' -held-by-> a
    """

    def __init__(self, waiting: list, cycle: Optional[str] = None):
        self.waiting = list(waiting)
        self.cycle = cycle
        msg = (
            "simulation deadlocked with %d waiting process(es): %s"
            % (len(self.waiting), ", ".join(self.waiting))
        )
        if cycle:
            msg += f"\nwait-for cycle: {cycle}"
        super().__init__(msg)


#: the public name the fault-injection / chaos layers use; kept as an
#: alias so both read naturally at their call sites
DeadlockError = SimulationDeadlock


class SyncTimeout(DesError):
    """A timed wait (latch ``wait(timeout=...)`` surfaced as a failure,
    or barrier ``arrive(timeout=...)``) expired before the sync point
    tripped."""

    def __init__(self, what: str, timeout: float):
        self.what = what
        self.timeout = timeout
        super().__init__(f"{what} not released within {timeout!r} s")


class Interrupted(DesError):
    """Thrown *into* a process generator when another process interrupts it.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause=None):
        self.cause = cause
        super().__init__(f"interrupted: {cause!r}")
