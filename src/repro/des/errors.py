"""Exception types raised by the DES kernel."""


class DesError(Exception):
    """Base class for all kernel errors."""


class SimulationDeadlock(DesError):
    """Raised by :meth:`Simulator.run` when live processes remain but the
    event queue is empty (every remaining process waits on something that
    can no longer happen)."""

    def __init__(self, waiting: list[str]):
        self.waiting = list(waiting)
        super().__init__(
            "simulation deadlocked with %d waiting process(es): %s"
            % (len(self.waiting), ", ".join(self.waiting))
        )


class Interrupted(DesError):
    """Thrown *into* a process generator when another process interrupts it.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause=None):
        self.cause = cause
        super().__init__(f"interrupted: {cause!r}")
