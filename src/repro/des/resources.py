"""Shared-resource primitives for DES processes: locks, semaphores, stores.

All primitives grant strictly in FIFO order, which keeps simulations
deterministic and models the fair queueing of ``java.util.concurrent``
structures closely enough for the paper's contention experiments.
"""

from __future__ import annotations

from collections import deque

from repro.des.errors import DesError


class Semaphore:
    """Counting semaphore with FIFO grant order.

    ``yield sem.acquire()`` suspends until a permit is available;
    ``sem.release()`` is immediate (no yield).  Statistics on waiting are
    kept so experiments can quantify contention:

    ``wait_count``   number of acquires that had to queue,
    ``wait_time``    total simulated time spent queued,
    ``hold_time``    total time permits were held.
    """

    def __init__(self, sim, permits: int = 1, name: str = ""):
        if permits < 1:
            raise ValueError(f"permits must be >= 1, got {permits}")
        self.sim = sim
        self.name = name
        self._permits = permits
        self._available = permits
        self._queue: deque = deque()
        self._acquired_at: dict = {}
        #: id(process) -> process for current permit holders; feeds the
        #: wait-for-graph deadlock diagnosis (who holds what)
        self._holders: dict = {}
        self.wait_count = 0
        self.wait_time = 0.0
        self.hold_time = 0.0
        self.acquire_count = 0
        # request objects are stateless handles on this semaphore, so
        # every acquire() can hand out the same one (hot-path allocation)
        self._acquire_req = _AcquireRequest(self)

    @property
    def available(self) -> int:
        """Permits currently free."""
        return self._available

    @property
    def queue_length(self) -> int:
        """Processes currently waiting."""
        return len(self._queue)

    def acquire(self) -> "_AcquireRequest":
        """Return a request object to ``yield``."""
        return self._acquire_req

    def owners(self) -> list:
        """Processes currently holding a permit (live ones only)."""
        return [p for p in self._holders.values() if p.alive]

    def waiters(self) -> list:
        """Processes currently queued for a permit (live ones only)."""
        return [p for p, _t in self._queue if p.alive]

    def release(self, holder=None) -> None:
        """Return one permit; wakes the head of the wait queue, if any."""
        key = holder if holder is not None else None
        if key is not None:
            start = self._acquired_at.pop(id(key), None)
            self._holders.pop(id(key), None)
        else:
            start = None
            if len(self._holders) == 1:
                # anonymous release of a mutex: the sole holder lets go
                only = next(iter(self._holders))
                self._acquired_at.pop(only, None)
                self._holders.pop(only, None)
        if start is not None:
            self.hold_time += self.sim.now - start
        if self.sim._subscribers:
            self.sim.emit("lock.release", self.name)
        while self._queue:
            proc, enqueued_at = self._queue.popleft()
            if not proc.alive:
                continue  # interrupted while waiting; skip
            self.wait_time += self.sim.now - enqueued_at
            self.acquire_count += 1
            self._acquired_at[id(proc)] = self.sim.now
            self._holders[id(proc)] = proc
            if self.sim._subscribers:
                self.sim.emit(
                    "lock.acquire", self.name,
                    ("process", proc.name),
                    ("waited", self.sim.now - enqueued_at),
                )
            self.sim._schedule(0.0, proc._resume, self)
            return
        self._available += 1
        if self._available > self._permits:
            raise DesError(f"semaphore {self.name!r} over-released")

    def reap_dead_holders(self) -> int:
        """Release permits held by processes that died without releasing.

        An interrupt can land at the ``yield sem.acquire()`` suspension
        point after the grant made the process a holder but before its
        body entered a ``try``/``finally`` — the permit would die with
        the process and wedge every later acquirer.  Returns the number
        of permits reclaimed; a watchdog calls this periodically.
        """
        dead = [p for p in self._holders.values() if not p.alive]
        for proc in dead:
            self.release(holder=proc)
        return len(dead)

    def _try_grant(self, process) -> bool:
        if self._available > 0:
            self._available -= 1
            self.acquire_count += 1
            self._acquired_at[id(process)] = self.sim.now
            self._holders[id(process)] = process
            return True
        return False


class _AcquireRequest:
    __slots__ = ("sem",)

    def __init__(self, sem: Semaphore):
        self.sem = sem

    def _subscribe(self, sim, process) -> None:
        sem = self.sem
        if sem._try_grant(process):
            if sim._subscribers:
                sim.emit(
                    "lock.acquire", sem.name,
                    ("process", process.name), ("waited", 0.0),
                )
            sim._schedule(0.0, process._resume, sem)
        else:
            if sim._subscribers:
                sim.emit(
                    "lock.request", sem.name, ("process", process.name)
                )
            sem.wait_count += 1
            sem._queue.append((process, sim.now))


class Lock(Semaphore):
    """A mutex: a one-permit semaphore.

    ``release(holder)`` should pass the owning process so hold times are
    attributed; for brevity ``release()`` without a holder is accepted.
    """

    def __init__(self, sim, name: str = ""):
        super().__init__(sim, permits=1, name=name)

    @property
    def locked(self) -> bool:
        return self._available == 0


class FifoStore:
    """Unbounded FIFO queue of items with blocking ``get``.

    This is the work-queue primitive: producers ``put`` (non-blocking),
    consumers ``yield store.get()``.  Grant order across blocked
    consumers is FIFO.  ``close()`` causes current and future getters to
    receive ``None`` — a simple shutdown sentinel protocol.
    """

    def __init__(self, sim, name: str = ""):
        self.sim = sim
        self.name = name
        self._items: deque = deque()
        self._getters: deque = deque()
        self._closed = False
        self.put_count = 0
        self.get_count = 0
        self.max_depth = 0
        # like Semaphore.acquire: one stateless request serves every get()
        self._get_req = _GetRequest(self)

    def __len__(self) -> int:
        return len(self._items)

    @property
    def closed(self) -> bool:
        return self._closed

    def put(self, item) -> None:
        """Enqueue an item, waking one blocked getter if present."""
        if self._closed:
            raise DesError(f"put on closed store {self.name!r}")
        self.put_count += 1
        while self._getters:
            proc = self._getters.popleft()
            if not proc.alive:
                continue
            self.get_count += 1
            self.sim._schedule(0.0, proc._resume, item)
            return
        items = self._items
        items.append(item)
        if len(items) > self.max_depth:
            self.max_depth = len(items)

    def get(self) -> "_GetRequest":
        """Return a request to ``yield``; resolves to an item or None if
        the store is closed and drained."""
        return self._get_req

    def try_get(self):
        """Non-blocking pop: returns an item, or None if empty."""
        if self._items:
            self.get_count += 1
            return self._items.popleft()
        return None

    def close(self) -> None:
        """Mark the store closed; blocked getters resolve to ``None``."""
        self._closed = True
        while self._getters:
            proc = self._getters.popleft()
            if proc.alive:
                self.sim._schedule(0.0, proc._resume, None)


class _GetRequest:
    __slots__ = ("store",)

    def __init__(self, store: FifoStore):
        self.store = store

    def _subscribe(self, sim, process) -> None:
        store = self.store
        if store._items:
            store.get_count += 1
            sim._schedule(0.0, process._resume, store._items.popleft())
        elif store._closed:
            sim._schedule(0.0, process._resume, None)
        else:
            store._getters.append(process)
