"""Converting measured MD work counts into simulated machine costs.

The serial engine reports, per timestep and phase, exactly what it did:
flops, pair/bond terms, bytes gathered irregularly versus streamed, and
the per-atom distribution of that work.  This module prices that work
for one thread partition:

* arithmetic → core cycles (``cycles_per_flop``: scalar JVM code),
* irregular bytes → object-graph-amplified traffic against the thread's
  partition region and a shared ghost region (``A[B[i]]`` gathers chase
  array slot → Atom object → Vector3, ``irregular_amplification``
  uncorrelated lines per logical access),
* temp-object churn (§V-B's Vector3 wrappers) → always-cold reads of a
  young-generation region, polluting the LLC,
* privatized-force writes and the phase-5 reduction that reads every
  thread's buffer (cross-socket traffic when pinned one-per-socket —
  the Table III topology effect).

The parameters are calibrated once against Fig. 1's published speedups
and then reused unchanged by every other experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.machine.cachestate import Region
from repro.machine.cost import Traffic, WorkCost
from repro.md.engine import PhaseWork, StepReport

Range = Tuple[int, int]


@dataclass(frozen=True, slots=True)
class CostParams:
    """Calibration knobs for the machine cost model."""

    #: core cycles per reported flop (scalar JVM arithmetic)
    cycles_per_flop: float = 1.4
    #: cache lines actually touched per reported irregular byte (the
    #: Java object graph: reference array -> Atom -> Vector3 objects)
    irregular_amplification: float = 4.0
    #: multiplier on regular (streamed) bytes
    regular_amplification: float = 1.0
    #: total heap footprint ("a working set size of about 25 MB") — a
    #: fallback for hot-set sizing when no trace statistics are given
    working_set_bytes: float = 25.0 * 2**20
    #: cache-region size relative to the measured per-step hot traffic:
    #: the bytes a step cycles through, padded for layout slack.  A hot
    #: set below the LLC size re-hits every step (nanocar's car
    #: subgraph); one above it thrashes (Al-1000's full-system sweeps).
    hot_set_factor: float = 1.3
    #: fraction of force-phase irregular reads that hit other threads'
    #: partitions (ghost atoms at partition boundaries)
    shared_read_fraction: float = 0.25
    #: bytes of short-lived Vector3 garbage allocated per force term
    temp_bytes_per_term: float = 40.0
    #: per-thread TLAB recycling window the churn cycles through; the
    #: buffer itself stays cache-resident (little DRAM traffic) but its
    #: residency *pollutes* the LLC, evicting useful data (§V-B)
    temp_tlab_bytes: float = 0.75 * 2**20
    #: whether temp churn is modelled at all (ablation toggle)
    include_temp_churn: bool = True
    #: master-thread cycles to enqueue one task
    submit_cycles_per_task: float = 1500.0
    #: master-thread cycles per atom per step to refresh the display
    #: (the benchmarks ran with "the graphical display set to the
    #: default size"); a serial fraction in every configuration
    display_cycles_per_atom: float = 40.0
    #: reduction flops per (thread copy x atom x component)
    reduce_flops_per_element: float = 1.0


#: the calibrated defaults, shared by every "params=None" call site —
#: CostParams is frozen, so one instance is safe to hand out forever
#: (constructing it fresh showed up in the replay profile)
DEFAULT_COST_PARAMS = CostParams()


class MachineCostModel:
    """Prices one workload's step reports for a given thread partition."""

    def __init__(
        self,
        n_atoms: int,
        ranges: Sequence[Range],
        params: Optional[CostParams] = None,
        name: str = "wl",
        fuse_rebuild: bool = True,
        hot_bytes_per_step: Optional[float] = None,
        force_ranges: Optional[Sequence[Range]] = None,
    ):
        if n_atoms < 1:
            raise ValueError(f"n_atoms must be >= 1: {n_atoms}")
        self.n_atoms = n_atoms
        self.ranges = list(ranges)
        self.n_threads = len(self.ranges)
        #: irregular phases (forces / rebuild) may be decomposed finer
        #: than one task per thread — each chunk writes its own
        #: privatized force copy, and the reduction reads *every* copy,
        #: so finer granularity has a real, priced cost
        self.force_ranges = (
            list(force_ranges) if force_ranges is not None else self.ranges
        )
        params = params if params is not None else DEFAULT_COST_PARAMS
        self.params = params
        self.name = name
        self.fuse_rebuild = fuse_rebuild
        # region sizes follow the *hot* set — the bytes one step cycles
        # through — not the total heap: re-read data stays cached iff
        # the hot set fits the LLC
        if hot_bytes_per_step is None:
            hot_bytes_per_step = params.working_set_bytes
        hot = max(hot_bytes_per_step * params.hot_set_factor, 64 * 1024)
        self.hot_bytes = hot
        # partitions are shared regions: neighbor threads read each
        # other's boundary atoms, and the writer's socket is their home
        # (cross-socket readers pay the remote penalty — the Table III
        # topology effect)
        self.part_regions = [
            Region(
                f"{name}.part{t}",
                max(1, int(hot * (hi - lo) / n_atoms)),
                shared=True,
            )
            for t, (lo, hi) in enumerate(self.ranges)
        ]
        #: privatized force arrays, one per force task (read by
        #: everyone during reduction)
        self.force_regions = [
            Region(f"{name}.forces{t}", n_atoms * 24, shared=True)
            for t in range(len(self.force_ranges))
        ]
        #: young-generation churn (per thread TLAB, fixed size)
        self.tmp_regions = [
            Region(f"{name}.tmp{t}", int(params.temp_tlab_bytes))
            for t in range(self.n_threads)
        ]

    # -- helpers -----------------------------------------------------------

    def _share(
        self, work: PhaseWork, ranges: Optional[Sequence[Range]] = None
    ) -> np.ndarray:
        """Fraction of the phase's work owned by each task range."""
        ranges = self.ranges if ranges is None else ranges
        per_atom = work.per_atom
        total = float(per_atom.sum())
        if total <= 0:
            return np.zeros(len(ranges))
        return np.array(
            [per_atom[lo:hi].sum() / total for lo, hi in ranges]
        )

    def _part_overlap(self, lo: int, hi: int) -> List[Tuple[int, float]]:
        """(thread index, fraction of [lo, hi)) for each thread
        partition a force chunk overlaps — chunks read their atoms from
        whichever partition regions actually hold them."""
        span = max(1, hi - lo)
        out: List[Tuple[int, float]] = []
        for t, (tlo, thi) in enumerate(self.ranges):
            ov = min(hi, thi) - max(lo, tlo)
            if ov > 0:
                out.append((t, ov / span))
        return out

    def _uniform_costs(self, work: PhaseWork, label: str) -> List[WorkCost]:
        """Per-thread costs for an atom-uniform streaming phase
        (predictor / corrector)."""
        p = self.params
        shares = self._share(work)
        costs = []
        for t, share in enumerate(shares):
            reads = []
            writes = []
            if work.bytes_regular > 0:
                n_bytes = (
                    work.bytes_regular * share * p.regular_amplification
                )
                reads.append(Traffic(self.part_regions[t], n_bytes))
                # updating positions/velocities re-homes the partition
                # on the executing thread's socket
                writes.append(
                    Traffic(self.part_regions[t], n_bytes * 0.5, write=True)
                )
            costs.append(
                WorkCost(
                    cycles=work.flops * share * p.cycles_per_flop,
                    reads=tuple(reads),
                    writes=tuple(writes),
                    label=label,
                )
            )
        return costs

    def _force_like_costs(
        self, work: PhaseWork, label: str
    ) -> List[WorkCost]:
        """Per-task costs for irregular gather phases (forces,
        neighbor rebuild) — one per ``force_ranges`` chunk."""
        p = self.params
        ranges = self.force_ranges
        shares = self._share(work, ranges)
        costs = []
        for t, share in enumerate(shares):
            lo, hi = ranges[t]
            irregular = (
                work.bytes_irregular * share * p.irregular_amplification
            )
            regular = work.bytes_regular * share * p.regular_amplification
            reads = []
            overlap = self._part_overlap(lo, hi)
            own_parts = {s for s, _frac in overlap}
            if irregular > 0:
                others = [
                    s for s in range(self.n_threads) if s not in own_parts
                ]
                ghost = irregular * p.shared_read_fraction if others else 0.0
                own = irregular - ghost
                for s, frac in overlap:
                    reads.append(Traffic(self.part_regions[s], own * frac))
                for s in others:
                    # boundary atoms gathered from neighbor partitions;
                    # remote when partition s is homed on another socket
                    reads.append(
                        Traffic(self.part_regions[s], ghost / len(others))
                    )
            if regular > 0:
                for s, frac in overlap:
                    reads.append(
                        Traffic(self.part_regions[s], regular * frac)
                    )
            if p.include_temp_churn and work.terms > 0:
                churn = work.terms * share * p.temp_bytes_per_term
                reads.append(
                    Traffic(self.tmp_regions[t % self.n_threads], churn)
                )
            writes = (
                Traffic(
                    self.force_regions[t],
                    work.terms and (hi - lo) * 24.0,
                    write=True,
                ),
            )
            costs.append(
                WorkCost(
                    cycles=work.flops * share * p.cycles_per_flop,
                    reads=tuple(reads),
                    writes=writes if work.terms else (),
                    label=label,
                )
            )
        return costs

    def _reduce_costs(self) -> List[WorkCost]:
        """Phase 5: each thread sums all copies over its atom range.
        Every privatized force copy is read, so finer force chunks make
        this phase strictly more expensive — the granularity trade the
        autotuner weighs."""
        p = self.params
        n_copies = len(self.force_regions)
        costs = []
        for t, (lo, hi) in enumerate(self.ranges):
            span = hi - lo
            reads = tuple(
                Traffic(self.force_regions[s], span * 24.0)
                for s in range(n_copies)
            )
            writes = (Traffic(self.part_regions[t], span * 24.0, write=True),)
            costs.append(
                WorkCost(
                    cycles=n_copies
                    * span
                    * 3
                    * p.reduce_flops_per_element
                    * p.cycles_per_flop,
                    reads=reads,
                    writes=writes,
                    label="reduce",
                )
            )
        return costs

    @staticmethod
    def _merge_phase_work(a: PhaseWork, b: PhaseWork) -> PhaseWork:
        return PhaseWork(
            per_atom=a.per_atom + b.per_atom,
            flops=a.flops + b.flops,
            bytes_irregular=a.bytes_irregular + b.bytes_irregular,
            bytes_regular=a.bytes_regular + b.bytes_regular,
            terms=a.terms + b.terms,
        )

    # -- public ---------------------------------------------------------------

    def master_step_overhead(self) -> WorkCost:
        """Serial master work per step (display refresh)."""
        return WorkCost(
            cycles=self.params.display_cycles_per_atom * self.n_atoms,
            label="display",
        )

    def dispatch_cost(self, n_tasks: int) -> WorkCost:
        """Master cycles to enqueue a phase's tasks."""
        return WorkCost(
            cycles=self.params.submit_cycles_per_task * n_tasks,
            label="dispatch",
        )

    def step_phases(
        self, report: StepReport
    ) -> List[Tuple[str, List[WorkCost]]]:
        """The parallel phases of one timestep as (name, per-thread
        costs) in execution order.  With ``fuse_rebuild`` (the paper's
        design) a rebuild's work is folded into the force tasks instead
        of getting its own barrier."""
        pw = report.phase_work
        phases: List[Tuple[str, List[WorkCost]]] = [
            ("predict", self._uniform_costs(pw["predict"], "predict"))
        ]
        force_work = pw["forces"]
        if report.rebuilt and pw["rebuild"].flops > 0:
            if self.fuse_rebuild:
                force_work = self._merge_phase_work(
                    pw["rebuild"], force_work
                )
            else:
                phases.append(
                    ("rebuild", self._force_like_costs(pw["rebuild"], "rebuild"))
                )
        phases.append(("forces", self._force_like_costs(force_work, "forces")))
        phases.append(("reduce", self._reduce_costs()))
        phases.append(("correct", self._uniform_costs(pw["correct"], "correct")))
        return phases
