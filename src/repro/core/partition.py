"""Work partitioning over atoms.

"During each phase ... each thread is assigned a fraction 1/N of the
total atoms to process, where N is the number of threads." (§II-B)
That is :func:`block_partition`.  :func:`balanced_partition` is the
inspector-style alternative (contiguous ranges equalizing measured
per-atom work) used by the partitioning ablation.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

Range = Tuple[int, int]


def block_partition(n_items: int, n_parts: int) -> List[Range]:
    """Contiguous 1/N blocks; earlier blocks get the remainder."""
    if n_parts < 1:
        raise ValueError(f"n_parts must be >= 1: {n_parts}")
    if n_items < 0:
        raise ValueError(f"negative n_items: {n_items}")
    base, extra = divmod(n_items, n_parts)
    ranges = []
    lo = 0
    for p in range(n_parts):
        hi = lo + base + (1 if p < extra else 0)
        ranges.append((lo, hi))
        lo = hi
    return ranges


def balanced_partition(
    weights: np.ndarray, n_parts: int
) -> List[Range]:
    """Contiguous ranges whose weight sums are as equal as a greedy
    prefix scan can make them (each range closes once it reaches the
    ideal share)."""
    if n_parts < 1:
        raise ValueError(f"n_parts must be >= 1: {n_parts}")
    weights = np.asarray(weights, dtype=np.float64)
    n = len(weights)
    total = float(weights.sum())
    if total <= 0 or n_parts == 1:
        return block_partition(n, n_parts)
    target = total / n_parts
    ranges: List[Range] = []
    lo = 0
    acc = 0.0
    for i in range(n):
        acc += weights[i]
        remaining_parts = n_parts - len(ranges)
        remaining_items = n - (i + 1)
        # close the range at the target, but never leave more parts
        # than items behind
        if len(ranges) < n_parts - 1 and (
            acc >= target or remaining_items <= remaining_parts - 1
        ):
            ranges.append((lo, i + 1))
            lo = i + 1
            acc = 0.0
    ranges.append((lo, n))
    while len(ranges) < n_parts:
        ranges.append((n, n))
    return ranges


def guided_partition(
    n_items: int, n_workers: int, min_chunk: int = 0
) -> List[Range]:
    """Guided self-scheduling chunks: contiguous ranges of decreasing
    size, each ``ceil(remaining / n_workers)`` items (Polychronopoulos
    & Kuck's GSS).  Early chunks are big (low dispatch overhead), late
    chunks are small (stragglers level out at the phase latch) — the
    classic granularity curve for irregular per-item cost.

    ``min_chunk`` floors the chunk size (0 picks
    ``max(1, n_items // (16 * n_workers))``) so the tail does not
    degenerate into thousands of single-item tasks.
    """
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1: {n_workers}")
    if n_items < 0:
        raise ValueError(f"negative n_items: {n_items}")
    if min_chunk < 0:
        raise ValueError(f"negative min_chunk: {min_chunk}")
    if min_chunk == 0:
        min_chunk = max(1, n_items // (16 * n_workers))
    ranges: List[Range] = []
    lo = 0
    while lo < n_items:
        remaining = n_items - lo
        size = max(min_chunk, -(-remaining // n_workers))
        hi = min(n_items, lo + size)
        ranges.append((lo, hi))
        lo = hi
    if not ranges:
        ranges = block_partition(n_items, n_workers)
    return ranges


def range_weights(
    ranges: Sequence[Range], weights: np.ndarray
) -> np.ndarray:
    """Total weight per range."""
    weights = np.asarray(weights, dtype=np.float64)
    return np.array([weights[lo:hi].sum() for lo, hi in ranges])


def imbalance(per_part: np.ndarray) -> float:
    """Load imbalance = max/mean − 1 (0 = perfectly balanced)."""
    per_part = np.asarray(per_part, dtype=np.float64)
    mean = per_part.mean() if len(per_part) else 0.0
    if mean <= 0:
        return 0.0
    return float(per_part.max() / mean - 1.0)
