"""Real-thread parallel MD engine (correctness backend).

Reproduces the §II-B execution pattern on actual Python threads: a
fixed-size :class:`~repro.concurrent.ExecutorService`, a 1/N block
partition of atoms, privatized per-thread force arrays, a reduction
phase, and a countdown latch closing every phase.  Because each thread
writes only its own partition slices / private buffer, the step is
race-free; pytest verifies the trajectory matches the serial engine to
floating-point reassociation tolerance.

(The GIL means this backend cannot *speed up* — the repro brief's
documented substitution.  Timing happens in
:class:`repro.core.simulate.SimulatedParallelRun`.)
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.concurrent import (
    CountDownLatch,
    ExecutorService,
    QueueMode,
)
from repro.core.partition import block_partition
from repro.md.boundary import Boundary, ReflectiveBox
from repro.md.engine import StepReport
from repro.md.forces.base import Force, ForceResult
from repro.md.integrator import TaylorPredictorCorrector
from repro.md.neighbors import NeighborList
from repro.md.system import AtomSystem
from repro.md.thermostat import BerendsenThermostat


class ParallelMDEngine:
    """Multithreaded Molecular Workbench engine.

    Parameters mirror :class:`~repro.md.engine.MDEngine`, plus:

    n_threads:
        Pool size ("typically, one thread is created per core").
    queue_mode:
        Single shared work queue (default) or one per thread.
    """

    def __init__(
        self,
        system: AtomSystem,
        forces: Sequence[Force],
        n_threads: int,
        boundary: Optional[Boundary] = None,
        dt_fs: float = 2.0,
        neighbor_cutoff: Optional[float] = None,
        skin: float = 0.8,
        queue_mode: QueueMode = QueueMode.SINGLE,
        thermostat: Optional[BerendsenThermostat] = None,
    ):
        if n_threads < 1:
            raise ValueError(f"n_threads must be >= 1: {n_threads}")
        self.system = system
        self.n_threads = n_threads
        self.boundary = boundary or ReflectiveBox(system.box)
        self.integrator = TaylorPredictorCorrector(dt_fs)
        self.thermostat = thermostat
        self._needs_nlist = any(f.uses_neighbor_list() for f in forces)
        if neighbor_cutoff is None:
            sig_max = float(system.sigma.max()) if system.n_atoms else 3.0
            neighbor_cutoff = 2.5 * sig_max
        self.neighbors = NeighborList(neighbor_cutoff, skin=skin)
        self.ranges = block_partition(system.n_atoms, n_threads)
        #: forces[t] = the force set restricted to thread t's owned terms
        self.thread_forces: List[List[Force]] = [
            [f.restrict(lo, hi) for f in forces]
            for lo, hi in self.ranges
        ]
        self._full_forces = list(forces)
        # privatized force arrays — one copy per thread (phase 5 reduces)
        self.private_forces = np.zeros((n_threads, system.n_atoms, 3))
        self.pool = ExecutorService(
            n_threads, queue_mode, name="mw-pool"
        )
        self.step_count = 0
        self._primed = False

    # -- phase helpers ---------------------------------------------------------

    def _run_phase(self, fns) -> None:
        """Submit one task per thread and wait on the countdown latch."""
        latch = CountDownLatch(len(fns))
        errors: List[BaseException] = []

        def wrap(fn):
            def task():
                try:
                    fn()
                except BaseException as exc:  # noqa: BLE001
                    errors.append(exc)
                finally:
                    latch.count_down()

            return task

        for i, fn in enumerate(fns):
            self.pool.submit(wrap(fn), worker=i)
        latch.await_()
        if errors:
            raise errors[0]

    def _phase_predict(self) -> None:
        def task(lo, hi):
            return lambda: self.integrator.predict(self.system, lo, hi)

        self._run_phase([task(lo, hi) for lo, hi in self.ranges])
        self.boundary.apply(self.system.positions, self.system.velocities)

    def _phase_forces(self) -> Dict[str, ForceResult]:
        results: List[Optional[List[ForceResult]]] = [None] * self.n_threads

        def task(t, lo, hi):
            def run():
                buf = self.private_forces[t]
                buf[:] = 0.0
                out = []
                for force in self.thread_forces[t]:
                    out.append(
                        force.compute(
                            self.system,
                            self.boundary,
                            self.neighbors if self._needs_nlist else None,
                            buf,
                        )
                    )
                results[t] = out

            return run

        self._run_phase(
            [task(t, lo, hi) for t, (lo, hi) in enumerate(self.ranges)]
        )
        # merge per-thread results per force (for the step report)
        merged: Dict[str, ForceResult] = {}
        n = self.system.n_atoms
        for t in range(self.n_threads):
            for force, res in zip(self.thread_forces[t], results[t]):
                agg = merged.get(force.name)
                if agg is None:
                    merged[force.name] = ForceResult(
                        res.energy,
                        res.terms,
                        res.per_atom_work.copy(),
                        res.flops,
                        res.bytes_irregular,
                        res.bytes_regular,
                    )
                else:
                    agg.energy += res.energy
                    agg.terms += res.terms
                    agg.per_atom_work += res.per_atom_work
                    agg.flops += res.flops
                    agg.bytes_irregular += res.bytes_irregular
                    agg.bytes_regular += res.bytes_regular
        return merged

    def _phase_reduce(self) -> None:
        def task(lo, hi):
            def run():
                self.system.forces[lo:hi] = self.private_forces[
                    :, lo:hi, :
                ].sum(axis=0)

            return run

        self._run_phase([task(lo, hi) for lo, hi in self.ranges])

    def _phase_correct(self) -> None:
        def task(lo, hi):
            return lambda: self.integrator.correct(self.system, lo, hi)

        self._run_phase([task(lo, hi) for lo, hi in self.ranges])
        if self.thermostat is not None:
            self.thermostat.apply(self.system, self.integrator.dt)

    # -- public API --------------------------------------------------------------

    def prime(self) -> None:
        """Evaluate initial forces/accelerations once (idempotent)."""
        if self._primed:
            return
        if self._needs_nlist:
            self.neighbors.ensure(self.system.positions, self.boundary)
        self._phase_forces()
        self._phase_reduce()
        self.integrator.prime(self.system)
        self._primed = True

    def step(self) -> StepReport:
        """One six-phase timestep across the thread pool."""
        self.prime()
        self._phase_predict()
        rebuilt = False
        if self._needs_nlist:
            rebuilt = self.neighbors.ensure(
                self.system.positions, self.boundary
            )
        merged = self._phase_forces()
        self._phase_reduce()
        self._phase_correct()
        self.step_count += 1
        potential = sum(r.energy for r in merged.values())
        return StepReport(
            step=self.step_count,
            rebuilt=rebuilt,
            potential_energy=potential,
            kinetic_energy=self.system.kinetic_energy(),
            force_results=merged,
        )

    def run(self, n_steps: int) -> List[StepReport]:
        """Advance ``n_steps`` timesteps; returns their reports."""
        return [self.step() for _ in range(n_steps)]

    def shutdown(self) -> None:
        """Stop the worker pool (also via the context manager)."""
        self.pool.shutdown()

    def __enter__(self) -> "ParallelMDEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
