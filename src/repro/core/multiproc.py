"""Process-parallel force evaluation — the CPython GIL workaround.

The real-thread :class:`~repro.core.parallel.ParallelMDEngine` proves
the decomposition correct but cannot speed up under the GIL.  This
backend runs the force phase across *processes* instead: each worker
process owns one restricted force set (the same ``Force.restrict``
decomposition), receives the current positions each step, and returns
its privatized force contribution; the master reduces.

This is the honest CPython analog of the paper's thread pool: the same
phases, the same ownership split, real hardware parallelism when cores
exist — at the price of per-step serialization traffic, which is why
production Python MD uses compiled kernels instead.  On a single-core
host it still runs correctly (and the tests only assert correctness).
"""

from __future__ import annotations

import multiprocessing as mp
import pickle
from typing import List, Optional, Sequence

import numpy as np

from repro.core.partition import block_partition
from repro.md.boundary import Boundary, ReflectiveBox
from repro.md.engine import StepReport
from repro.md.forces.base import Force
from repro.md.integrator import TaylorPredictorCorrector
from repro.md.neighbors import NeighborList
from repro.md.system import AtomSystem
from repro.md.thermostat import BerendsenThermostat

# Worker-process state, installed once by the pool initializer so the
# per-step payload is only positions + the pair list.
_WORKER_STATE: dict = {}


def _worker_init(payload: bytes) -> None:
    _WORKER_STATE["ctx"] = pickle.loads(payload)


def _worker_forces(args):
    """Evaluate one worker's restricted forces at given positions."""
    rank, positions, pairs_i, pairs_j = args
    ctx = _WORKER_STATE["ctx"]
    system: AtomSystem = ctx["system"]
    boundary: Boundary = ctx["boundary"]
    forces: List[Force] = ctx["forces"][rank]
    system.positions[:] = positions
    nl = ctx["neighbors"]
    nl.pairs_i = pairs_i
    nl.pairs_j = pairs_j
    nl._ref_positions = positions
    out = np.zeros_like(positions)
    energy = 0.0
    terms = 0
    for force in forces:
        res = force.compute(system, boundary, nl, out)
        energy += res.energy
        terms += res.terms
    return out, energy, terms


class ProcessParallelMDEngine:
    """MD engine with a multiprocessing force phase.

    Parameters mirror :class:`~repro.md.engine.MDEngine` plus
    ``n_workers``.  Requires a fork-capable platform (POSIX); the pool
    is created lazily on :meth:`prime`.
    """

    def __init__(
        self,
        system: AtomSystem,
        forces: Sequence[Force],
        n_workers: int = 2,
        boundary: Optional[Boundary] = None,
        dt_fs: float = 2.0,
        neighbor_cutoff: Optional[float] = None,
        skin: float = 0.8,
        thermostat: Optional[BerendsenThermostat] = None,
    ):
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1: {n_workers}")
        self.system = system
        self.n_workers = n_workers
        self.boundary = boundary or ReflectiveBox(system.box)
        self.integrator = TaylorPredictorCorrector(dt_fs)
        self.thermostat = thermostat
        self._needs_nlist = any(f.uses_neighbor_list() for f in forces)
        if neighbor_cutoff is None:
            sig_max = float(system.sigma.max()) if system.n_atoms else 3.0
            neighbor_cutoff = 2.5 * sig_max
        self.neighbors = NeighborList(neighbor_cutoff, skin=skin)
        self.ranges = block_partition(system.n_atoms, n_workers)
        self.thread_forces = [
            [f.restrict(lo, hi) for f in forces] for lo, hi in self.ranges
        ]
        self._pool: Optional[mp.pool.Pool] = None
        self.step_count = 0
        self._primed = False

    # -- pool management ---------------------------------------------------

    def _ensure_pool(self) -> None:
        if self._pool is not None:
            return
        ctx = mp.get_context("fork")
        payload = pickle.dumps(
            {
                "system": self.system.copy(),
                "boundary": self.boundary,
                "forces": self.thread_forces,
                "neighbors": NeighborList(
                    self.neighbors.cutoff, self.neighbors.skin
                ),
            }
        )
        self._pool = ctx.Pool(
            self.n_workers, initializer=_worker_init, initargs=(payload,)
        )

    def shutdown(self) -> None:
        """Terminate the worker processes (also via context manager)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "ProcessParallelMDEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # -- stepping ---------------------------------------------------------

    def _forces_parallel(self):
        self._ensure_pool()
        jobs = [
            (
                rank,
                self.system.positions,
                self.neighbors.pairs_i,
                self.neighbors.pairs_j,
            )
            for rank in range(self.n_workers)
        ]
        results = self._pool.map(_worker_forces, jobs)
        total = np.zeros_like(self.system.positions)
        energy = 0.0
        terms = 0
        for out, e, t in results:
            total += out  # the phase-5 reduction
            energy += e
            terms += t
        self.system.forces[:] = total
        return energy, terms

    def prime(self) -> None:
        """Evaluate initial forces/accelerations once (idempotent)."""
        if self._primed:
            return
        if self._needs_nlist:
            self.neighbors.ensure(self.system.positions, self.boundary)
        self._forces_parallel()
        self.integrator.prime(self.system)
        self._primed = True

    def step(self) -> StepReport:
        """One timestep with the force phase fanned out to processes."""
        self.prime()
        self.integrator.predict(self.system)
        self.boundary.apply(self.system.positions, self.system.velocities)
        rebuilt = False
        if self._needs_nlist:
            rebuilt = self.neighbors.ensure(
                self.system.positions, self.boundary
            )
        energy, _terms = self._forces_parallel()
        self.integrator.correct(self.system)
        if self.thermostat is not None:
            self.thermostat.apply(self.system, self.integrator.dt)
        self.step_count += 1
        return StepReport(
            step=self.step_count,
            rebuilt=rebuilt,
            potential_energy=energy,
            kinetic_energy=self.system.kinetic_energy(),
        )

    def run(self, n_steps: int) -> List[StepReport]:
        """Advance ``n_steps`` timesteps; returns their reports."""
        return [self.step() for _ in range(n_steps)]
