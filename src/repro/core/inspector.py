"""Inspector/executor runtime data reordering.

The paper comes out of the "Parallelization using Inspector/Executor
Strategies" project, and §V-A opens: "With irregular scientific
applications, inspector/executor strategies can often dynamically
reorder data so as to improve the spatial locality and consequently the
memory performance."  In Java the executor half was impossible — "data
packing to improve spatial locality is not practical in Java".  In this
reproduction it is a first-class operation:

* the *inspector* (:func:`spatial_order`) examines current atom
  positions and derives a cell-major permutation that makes physically
  proximate atoms index-adjacent;
* the *executor* (:func:`reorder_system`) applies it — permuting the
  packed atom arrays in place and renumbering every force's stored
  indices — between timesteps, whenever locality has decayed.

:func:`index_locality` quantifies the effect: the mean index distance
|i-j| over neighbor pairs, a direct proxy for how many cache lines an
LJ gather touches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.md.boundary import Boundary, ReflectiveBox
from repro.md.cells import LinkedCellGrid
from repro.md.forces.base import Force
from repro.md.neighbors import NeighborList
from repro.md.system import AtomSystem


def spatial_order(
    positions: np.ndarray, box: np.ndarray, cell_size: float
) -> np.ndarray:
    """Inspector: a permutation placing atoms cell-major (all atoms of
    one linked cell consecutively, cells in lexicographic order)."""
    grid = LinkedCellGrid(np.asarray(box, dtype=float), cell_size)
    cells = grid.linear_ids(grid.cell_coords(positions))
    return np.argsort(cells, kind="stable")


def index_locality(pairs_i: np.ndarray, pairs_j: np.ndarray) -> float:
    """Mean |i - j| over interaction pairs (lower = better packing)."""
    if len(pairs_i) == 0:
        return 0.0
    return float(np.mean(np.abs(pairs_i - pairs_j)))


@dataclass
class ReorderResult:
    """What one executor pass did."""

    order: np.ndarray
    inverse: np.ndarray
    forces: List[Force]
    locality_before: float
    locality_after: float

    @property
    def improvement(self) -> float:
        """Relative reduction of mean index distance (0..1)."""
        if self.locality_before <= 0:
            return 0.0
        return 1.0 - self.locality_after / self.locality_before


def reorder_system(
    system: AtomSystem,
    forces: Sequence[Force],
    cell_size: float = 6.0,
    boundary: Boundary = None,
) -> ReorderResult:
    """Executor: permute the system spatially and remap the forces.

    Mutates ``system`` in place; returns the permutation, the remapped
    force list (originals are not modified), and before/after locality
    measured on a fresh neighbor list.
    """
    boundary = boundary or ReflectiveBox(system.box)
    cutoff = 2.5 * float(system.sigma.max()) if system.n_atoms else cell_size
    nl = NeighborList(cutoff=cutoff, skin=0.5)
    nl.build(system.positions, boundary)
    before = index_locality(nl.pairs_i, nl.pairs_j)

    order = spatial_order(system.positions, system.box, cell_size)
    inverse = system.permute(order)
    remapped = [f.remap(inverse) for f in forces]

    nl.build(system.positions, boundary)
    after = index_locality(nl.pairs_i, nl.pairs_j)
    return ReorderResult(
        order=order,
        inverse=inverse,
        forces=remapped,
        locality_before=before,
        locality_after=after,
    )
