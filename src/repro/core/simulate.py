"""Replaying captured work traces on the simulated machine.

``capture_trace`` runs the *real* serial engine and keeps each step's
work counts; :class:`SimulatedParallelRun` then replays those counts as
the §II-B parallel execution — master thread dispatching per-thread
tasks phase by phase through a :class:`SimExecutorService`, closing
each phase with a countdown latch — on a :class:`SimMachine`.  One
physics run therefore prices any thread count, machine, pinning
topology, queue configuration, or instrumentation setting.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.concurrent import QueueMode, SimExecutorService
from repro.concurrent.simexec import Instrumentation
from repro.core.costmodel import (
    DEFAULT_COST_PARAMS,
    CostParams,
    MachineCostModel,
)
from repro.core.partition import (
    balanced_partition,
    block_partition,
    guided_partition,
)
from repro.des import SyncTimeout, Timeout
from repro.jvm.gc import GcModel
from repro.machine.machine import SimMachine
from repro.md.engine import StepReport


def capture_trace(workload, n_steps: int) -> List[StepReport]:
    """Run the serial engine for ``n_steps`` and return its reports
    (the physics runs once; replays are pure timing)."""
    engine = workload.make_engine()
    engine.prime()
    return engine.run(n_steps)


@dataclass
class RunResult:
    """Outcome of one simulated parallel run."""

    sim_seconds: float
    steps: int
    n_threads: int
    phase_seconds: Dict[str, float]
    #: per-phase list of latch skews (last minus first arrival)
    phase_skews: Dict[str, List[float]]
    #: per-worker busy seconds (what JaMON-style monitors would report)
    worker_busy: List[float]
    tasks_executed: List[int]
    migrations: Dict[str, int]
    #: stop-the-world collections injected during the run
    gc_pauses: int = 0
    gc_pause_seconds: float = 0.0
    #: (start, end) simulated-time window of every injected GC pause
    gc_windows: List[tuple] = field(default_factory=list)
    #: uids of tasks the self-healing executor re-issued (fault runs)
    reissued: List[str] = field(default_factory=list)
    #: indices of workers that crashed during the run
    dead_workers: List[int] = field(default_factory=list)
    #: realized FaultWindow records when a fault plan was armed
    fault_windows: List[object] = field(default_factory=list)
    #: per-worker successful-steal counts (STEALING pools; else empty)
    steals: List[int] = field(default_factory=list)
    machine: SimMachine = field(repr=False, default=None)

    @property
    def seconds_per_step(self) -> float:
        return self.sim_seconds / self.steps if self.steps else 0.0

    @property
    def updates_per_second(self) -> float:
        """The paper's headline display metric."""
        return 1.0 / self.seconds_per_step if self.steps else 0.0

    def mean_skew(self, phase: str = "forces") -> float:
        """Mean latch skew (last minus first arrival) of one phase."""
        skews = self.phase_skews.get(phase, [])
        return float(np.mean(skews)) if skews else 0.0


class SimulatedParallelRun:
    """One parallel MW execution on the simulated machine.

    Parameters
    ----------
    trace:
        Step reports from :func:`capture_trace`.
    n_atoms:
        Atom count of the traced workload.
    machine:
        A fresh :class:`SimMachine` (consumed by this run).
    n_threads:
        Worker-pool size.
    affinities:
        Optional per-worker PU masks (pinning experiments); None = OS.
    partition:
        ``"block"`` (the paper's 1/N split) or ``"balanced"``
        (equalizes measured force work; the partition ablation).
    queue_mode / instrumentation / params / fuse_rebuild:
        See :class:`SimExecutorService` and :class:`MachineCostModel`.
        ``QueueMode.STEALING`` swaps in a
        :class:`~repro.concurrent.stealing.StealingExecutorService`.
    assign:
        MULTI-queue phase-submit assignment policy (see
        ``ASSIGN_POLICIES``): ``"owner-index"`` (the paper's implicit
        task-i→queue-i wiring), ``"round-robin"``, or
        ``"cost-balanced"``.
    chunk / chunk_factor:
        Task granularity of the irregular force phases (forces and
        neighbor rebuild; uniform phases always run one task per
        worker).  ``"thread"`` is the paper's §II-B one-task-per-worker
        decomposition; ``"fixed"`` issues ``n_threads * chunk_factor``
        same-partition-policy chunks (finer grains for stealing to
        balance); ``"guided"`` issues decreasing guided-self-scheduling
        chunks (GSS defines its own range sizes, so ``partition`` only
        shapes the uniform phases).  Each chunk writes a privatized
        force copy the reduce phase must read — finer granularity is
        priced, not free.
    steal_policy / steal_cost_cycles:
        STEALING-pool victim ordering and per-probe toll (ignored for
        other queue modes).
    pop_overhead_cycles:
        SINGLE-queue shared-dequeue toll (see SimExecutorService).
    repeat:
        Replay the trace this many times (longer simulated runs).
    fault_plan:
        Optional :class:`~repro.faults.plan.FaultPlan` armed on this
        run; arming auto-enables the executor watchdog (0.5 ms sweeps)
        unless ``watchdog_interval`` says otherwise.
    watchdog_interval:
        Executor self-healing sweep period in simulated seconds; None
        (without a fault plan) spawns no watchdog, keeping fault-free
        traces byte-identical to the unhardened executor's.
    phase_timeout:
        Master-side bound on one phase's latch wait.  On expiry the
        master forces a watchdog sweep and retries; a phase making no
        progress with nothing re-issued raises
        :class:`~repro.des.errors.SyncTimeout` instead of hanging.
    """

    def __init__(
        self,
        trace: Sequence[StepReport],
        n_atoms: int,
        machine: SimMachine,
        n_threads: int,
        *,
        affinities: Optional[Sequence] = None,
        partition: str = "block",
        queue_mode: QueueMode = QueueMode.SINGLE,
        assign: str = "owner-index",
        chunk: str = "thread",
        chunk_factor: int = 1,
        steal_policy: str = "locality",
        steal_cost_cycles: float = 400.0,
        pop_overhead_cycles: float = 150.0,
        instrumentation: Optional[Instrumentation] = None,
        params: Optional[CostParams] = None,
        fuse_rebuild: bool = True,
        repeat: int = 1,
        name: str = "wl",
        master_affinity: Optional[Iterable[int]] = None,
        gc_model: Optional[GcModel] = None,
        fault_plan=None,
        watchdog_interval: Optional[float] = None,
        phase_timeout: Optional[float] = None,
    ):
        if not trace:
            raise ValueError("empty trace")
        if repeat < 1:
            raise ValueError(f"repeat must be >= 1: {repeat}")
        params = params if params is not None else DEFAULT_COST_PARAMS
        self.trace = list(trace)
        self.machine = machine
        self.n_threads = n_threads
        self.repeat = repeat
        if chunk_factor < 1:
            raise ValueError(f"chunk_factor must be >= 1: {chunk_factor}")
        if partition == "block":
            weights = None
            ranges = block_partition(n_atoms, n_threads)
        elif partition == "balanced":
            weights = self.trace[0].phase_work["forces"].per_atom + 1e-9
            ranges = balanced_partition(weights, n_threads)
        else:
            raise ValueError(f"unknown partition {partition!r}")
        # force-phase granularity: the irregular phases may run as more
        # (smaller) tasks than workers, feeding the stealing/queue
        # strategies finer grains to balance; uniform phases stay at
        # one task per worker
        if chunk == "thread":
            force_ranges = None
        elif chunk == "fixed":
            n_tasks = n_threads * chunk_factor
            force_ranges = (
                block_partition(n_atoms, n_tasks)
                if weights is None
                else balanced_partition(weights, n_tasks)
            )
        elif chunk == "guided":
            force_ranges = guided_partition(n_atoms, n_threads)
        else:
            raise ValueError(f"unknown chunk {chunk!r}")
        self.ranges = ranges
        self.cost_model = MachineCostModel(
            n_atoms,
            ranges,
            params=params,
            name=name,
            fuse_rebuild=fuse_rebuild,
            hot_bytes_per_step=self._hot_bytes_per_step(params),
            force_ranges=force_ranges,
        )
        if fault_plan is not None and watchdog_interval is None:
            # self-healing must be on to survive an armed fault plan;
            # 0.5 ms sweeps sit well inside the 3–30 ms runs while
            # staying far coarser than individual 80–5000 µs tasks
            watchdog_interval = 5e-4
        if queue_mode is QueueMode.STEALING:
            from repro.concurrent.stealing import StealingExecutorService

            self.pool = StealingExecutorService(
                machine,
                n_threads,
                affinities=affinities,
                instrumentation=instrumentation,
                name=f"{name}-pool",
                watchdog_interval=watchdog_interval,
                assign=assign,
                steal_policy=steal_policy,
                steal_cost_cycles=steal_cost_cycles,
            )
        else:
            self.pool = SimExecutorService(
                machine,
                n_threads,
                queue_mode=queue_mode,
                affinities=affinities,
                instrumentation=instrumentation,
                pop_overhead_cycles=pop_overhead_cycles,
                name=f"{name}-pool",
                watchdog_interval=watchdog_interval,
                assign=assign,
            )
        self.injector = None
        if fault_plan is not None:
            from repro.faults.injector import FaultInjector

            self.injector = FaultInjector(
                machine, fault_plan, pool=self.pool
            ).arm()
        self.phase_timeout = phase_timeout
        self._master_affinity = master_affinity
        #: optional JVM GC model: the temp-object churn of each step is
        #: recorded, and young-gen collections inject stop-the-world
        #: pauses at step boundaries (another §IV-B imbalance source)
        self.gc_model = gc_model
        self._gc_pauses = 0
        self._gc_pause_seconds = 0.0
        self._gc_windows: List[tuple] = []
        self._temp_bytes = params.temp_bytes_per_term
        self._plans = None
        self._phase_seconds: Dict[str, float] = defaultdict(float)
        self._phase_skews: Dict[str, List[float]] = defaultdict(list)
        self._started = False

    def _hot_bytes_per_step(self, params: CostParams) -> float:
        """Mean bytes one timestep cycles through (after object-graph
        amplification) — sizes the cache regions; see MachineCostModel."""
        totals = []
        for report in self.trace:
            total = 0.0
            for key in ("forces", "rebuild"):
                work = report.phase_work.get(key)
                if work is None:
                    continue
                total += (
                    work.bytes_irregular * params.irregular_amplification
                    + work.bytes_regular * params.regular_amplification
                )
            totals.append(total)
        return float(np.mean(totals)) if totals else params.working_set_bytes

    def _master_body(self, phase_seconds, phase_skews):
        machine = self.machine
        sim = machine.sim
        cm = self.cost_model
        step_index = 0
        # the per-step cost plan is a pure function of the captured
        # trace, and WorkCost is frozen — price each step once and
        # replay the same objects every repeat instead of rebuilding
        # thousands of Traffic/WorkCost records per pass
        overhead = cm.master_step_overhead()
        plans = self.plans()
        dispatch_costs = {
            len(costs): cm.dispatch_cost(len(costs))
            for phases in plans
            for _, costs in phases
        }
        for _ in range(self.repeat):
            for report, plan in zip(self.trace, plans):
                yield overhead
                for phase_name, costs in plan:
                    yield dispatch_costs[len(costs)]
                    t0 = machine.now
                    # phase markers cost nothing in simulated time (the
                    # bus is observation-only); they let the attribution
                    # layer map every worker instant to an engine phase
                    if sim._subscribers:
                        sim.emit(
                            "phase.begin", phase_name, ("step", step_index)
                        )
                    latch = self.pool.submit_phase(costs)
                    if self.phase_timeout is None:
                        yield latch
                    else:
                        # hardened master: a stalled phase triggers an
                        # immediate watchdog sweep; two sweeps with no
                        # progress and nothing re-issued means the phase
                        # can never finish — fail loudly, don't hang
                        last_count = None
                        while True:
                            ok = yield latch.wait(
                                timeout=self.phase_timeout
                            )
                            if ok:
                                break
                            healed = self.pool.check_workers()
                            if sim._subscribers:
                                sim.emit(
                                    "phase.stall", phase_name,
                                    ("remaining", latch.count),
                                    ("reissued", healed),
                                )
                            if latch.count == last_count and healed == 0:
                                raise SyncTimeout(
                                    f"phase {phase_name!r}",
                                    self.phase_timeout,
                                )
                            last_count = latch.count
                    if sim._subscribers:
                        sim.emit(
                            "phase.end", phase_name,
                            ("step", step_index),
                            ("seconds", machine.now - t0),
                        )
                    phase_seconds[phase_name] += machine.now - t0
                    phase_skews[phase_name].append(latch.skew)
                if self.gc_model is not None:
                    terms = report.phase_work["forces"].terms
                    self.gc_model.recorder.record(
                        "org.mw.math.Vector3",
                        int(self._temp_bytes),
                        count=terms,
                    )
                    event = self.gc_model.maybe_collect(machine.now)
                    if event is not None:
                        pause = event.pause_seconds
                        if machine.faults is not None:
                            # gc_amplify fault: the young-gen pause the
                            # model predicted balloons (full collection)
                            pause *= machine.faults.gc_multiplier
                        self._gc_pauses += 1
                        self._gc_pause_seconds += pause
                        self._gc_windows.append(
                            (machine.now, machine.now + pause)
                        )
                        if sim._subscribers:
                            sim.emit(
                                "gc.pause", "young",
                                ("seconds", pause),
                            )
                        yield Timeout(pause)
                step_index += 1
        self._finished_at = machine.now
        self.pool.shutdown()

    def plans(self) -> list:
        """The per-step phase cost plans — a pure function of the
        trace and pricing configuration (never of the machine or its
        seed), priced once and cached.  Batch replays share one plan
        list between runs whose pricing inputs match via
        :meth:`use_plans` (the records are frozen, so sharing cannot
        change results)."""
        if self._plans is None:
            cm = self.cost_model
            self._plans = [
                cm.step_phases(report) for report in self.trace
            ]
        return self._plans

    def use_plans(self, plans: list) -> None:
        """Adopt another run's precomputed :meth:`plans` list."""
        self._plans = plans

    def start(self) -> None:
        """Arm the replay: spawn the master thread on the machine
        without draining the event queue.  Pair with :meth:`finish`
        after the machine (or a merged multi-run loop — see
        :mod:`repro.ensemble.des`) has run to completion."""
        if self._started:
            raise RuntimeError("replay already started")
        self._started = True
        self._finished_at = None
        self.machine.thread(
            self._master_body(self._phase_seconds, self._phase_skews),
            "master",
            affinity=self._master_affinity,
        )

    def finish(self) -> RunResult:
        """Collect the result of a :meth:`start`-ed replay whose
        machine has fully drained."""
        trace = self.machine.scheduler.trace
        finished = (
            self._finished_at
            if self._finished_at is not None
            else self.machine.now
        )
        return RunResult(
            sim_seconds=finished,
            steps=len(self.trace) * self.repeat,
            n_threads=self.n_threads,
            phase_seconds=dict(self._phase_seconds),
            phase_skews=dict(self._phase_skews),
            worker_busy=list(self.pool.busy_time),
            tasks_executed=list(self.pool.tasks_executed),
            migrations=dict(trace.migrations),
            gc_pauses=self._gc_pauses,
            gc_pause_seconds=self._gc_pause_seconds,
            gc_windows=list(self._gc_windows),
            reissued=list(self.pool.reissued),
            dead_workers=self.pool.dead_workers,
            fault_windows=(
                self.injector.windows(finished)
                if self.injector is not None
                else []
            ),
            steals=list(getattr(self.pool, "steals", [])),
            machine=self.machine,
        )

    def run(self) -> RunResult:
        """Execute the replay to completion and collect the results."""
        self.start()
        self.machine.run()
        return self.finish()
