"""Parallel Molecular Workbench — the paper's primary contribution.

Two engines share the same decomposition (the §II work-queue pattern:
fixed thread pools, 1/N atom partitions, privatized force arrays with a
reduction, countdown latches between phases):

* :class:`~repro.core.parallel.ParallelMDEngine` — runs on **real
  Python threads** via :mod:`repro.concurrent`.  Its job is correctness:
  step-for-step it must produce the same trajectory as the serial
  engine.  (On a GIL interpreter it cannot exhibit speedup — the
  documented substitution.)
* :class:`~repro.core.simulate.SimulatedParallelRun` — replays a
  captured work trace on the :class:`~repro.machine.SimMachine`,
  converting measured per-phase work counts into simulated time through
  :class:`~repro.core.costmodel.MachineCostModel`.  Every performance
  experiment (Fig. 1, Table III, the observer-effect and pinning
  studies) runs here.
"""

from repro.core.costmodel import CostParams, MachineCostModel
from repro.core.inspector import (
    ReorderResult,
    index_locality,
    reorder_system,
    spatial_order,
)
from repro.core.multiproc import ProcessParallelMDEngine
from repro.core.parallel import ParallelMDEngine
from repro.core.partition import (
    balanced_partition,
    block_partition,
    imbalance,
    range_weights,
)
from repro.core.simulate import RunResult, SimulatedParallelRun, capture_trace

__all__ = [
    "CostParams",
    "MachineCostModel",
    "ParallelMDEngine",
    "ProcessParallelMDEngine",
    "ReorderResult",
    "RunResult",
    "SimulatedParallelRun",
    "balanced_partition",
    "block_partition",
    "capture_trace",
    "imbalance",
    "index_locality",
    "range_weights",
    "reorder_system",
    "spatial_order",
]
