"""OS scheduler model: run queues, placement, migration, affinity.

The paper observed (§V-B, Fig. 2) that "the Java runtime, in concert
with the underlying operating system, can migrate a thread between
various cores ... particularly frequent when threads encounter
synchronization operations", and that without pinning a worker thread
visits every core of a quad-core within a second.  This scheduler
reproduces that behaviour:

* each PU (hardware thread) has a FIFO run queue served by a dispatcher
  process;
* when a thread becomes runnable (new burst, or wakeup after a park at a
  lock/barrier), the scheduler *places* it: it prefers the last PU
  ("some degree of affinity with the previously assigned core") but
  consults load and, with probability ``migrate_prob``, re-places the
  thread by load alone — modelling timer interrupts, daemons and the
  kernel's load balancer;
* an affinity mask (the ``sched_setaffinity`` analog used through JNI in
  §V-B) restricts the candidate PU set;
* quantum expiry preempts a thread when other work waits on its queue;
* running on a PU whose SMT sibling is busy slows both (HyperThreading).

All randomness comes from one seeded generator, so traces are exactly
reproducible.
"""

from __future__ import annotations

import random
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.des import FifoStore, Timeout


@dataclass
class SchedulerTrace:
    """Ground-truth record of scheduling decisions.

    ``residency[thread][pu]`` accumulates seconds executed on each PU —
    the data behind the paper's Fig. 2 heat map.  ``events`` is the raw
    ordered log of (time, thread, pu, what).
    """

    events: List[Tuple[float, str, int, str]] = field(default_factory=list)
    residency: Dict[str, Dict[int, float]] = field(
        default_factory=lambda: defaultdict(lambda: defaultdict(float))
    )
    migrations: Dict[str, int] = field(
        default_factory=lambda: defaultdict(int)
    )
    dispatches: Dict[str, int] = field(
        default_factory=lambda: defaultdict(int)
    )
    record_events: bool = True
    #: owning simulator — when set, every recorded event is mirrored onto
    #: its trace bus as ``sched.<what>`` (ready/run/preempt/done/migrate)
    _sim: object = field(default=None, repr=False, compare=False)

    def record(self, time: float, thread: str, pu: int, what: str) -> None:
        """Append one raw scheduling event."""
        if self.record_events:
            self.events.append((time, thread, pu, what))
        sim = self._sim
        if sim is not None and sim._subscribers:
            kind, _, label = what.partition(":")
            if label:
                sim.emit(f"sched.{kind}", thread, ("pu", pu), ("label", label))
            else:
                sim.emit(f"sched.{kind}", thread, ("pu", pu))

    def add_residency(self, thread: str, pu: int, dt: float) -> None:
        """Accumulate executed seconds for (thread, pu)."""
        self.residency[thread][pu] += dt

    def cores_visited(self, thread: str) -> int:
        """How many distinct PUs the thread has executed on."""
        return sum(1 for v in self.residency[thread].values() if v > 0)

    def residency_matrix(self, threads: List[str], n_pus: int):
        """Rows = threads, cols = PUs, values = seconds executed there."""
        mat = np.zeros((len(threads), n_pus))
        for i, t in enumerate(threads):
            for pu, sec in self.residency[t].items():
                mat[i, pu] = sec
        return mat


class Scheduler:
    """Places runnable threads on PUs and time-slices them."""

    def __init__(
        self,
        machine,
        quantum: float = 0.002,
        migrate_prob: float = 0.25,
        rebalance_prob: float = 0.015,
        smt_throughput: float = 0.62,
        ctx_switch: float = 1e-6,
        seed: int = 0,
    ):
        self.machine = machine
        self.sim = machine.sim
        self.topology = machine.topology
        self.quantum = quantum
        self.migrate_prob = migrate_prob
        self.rebalance_prob = rebalance_prob
        self.smt_throughput = smt_throughput
        self.ctx_switch = ctx_switch
        self._rng = random.Random(seed)
        n = self.topology.spec.n_pus
        self.runqueues: List[FifoStore] = [
            FifoStore(self.sim, name=f"rq{p}") for p in range(n)
        ]
        self._running: List[Optional[object]] = [None] * n
        # tasks submitted to a PU but not yet marked running: a put()
        # hands the thread straight to a blocked dispatcher, leaving it
        # invisible to len(runqueue); without this counter simultaneous
        # placements pile onto one PU while others idle
        self._pending: List[int] = [0] * n
        # topology is immutable, but llc_of/smt_siblings build fresh
        # lists per call — placement consults them for every runnable
        # thread, so flatten them into indexed tables once
        self._llc_of: Tuple[int, ...] = tuple(
            self.topology.llc_of(p) for p in range(n)
        )
        self._smt_other: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(s for s in self.topology.smt_siblings(p) if s != p)
            for p in range(n)
        )
        # run-queue depth is read per candidate PU per placement; index
        # the underlying deques directly instead of FifoStore.__len__
        self._rq_items = [rq._items for rq in self.runqueues]
        # incrementally maintained count of *busy* SMT siblings per PU
        # (busy = running or pending work); placement reads this for
        # every candidate, so the flip points in submit()/_dispatch()
        # keep it current instead of rescanning siblings per query
        self._busy_sibs: List[int] = [0] * n
        #: (affinity tuple, llc id) -> candidate PUs under that LLC;
        #: affinity masks are few and stable, so this saturates quickly
        self._local_pools: Dict[Tuple[Tuple[int, ...], int], List[int]] = {}
        self.trace = SchedulerTrace(_sim=self.sim)
        for p in range(n):
            self.sim.spawn(self._dispatch(p), name=f"cpu{p}", daemon=True)

    # -- placement ---------------------------------------------------------

    def load(self, pu: int) -> float:
        """Instantaneous load metric used for placement decisions."""
        l = (
            len(self._rq_items[pu])
            + self._pending[pu]
            + (1.0 if self._running[pu] else 0.0)
        )
        # one += per busy sibling, exactly like the original sibling
        # scan, so the float result is bit-identical
        k = self._busy_sibs[pu]
        while k:  # a busy HT sibling makes this PU less attractive
            l += 0.45
            k -= 1
        return l

    def choose_pu(self, thread) -> int:
        """Pick a PU within the thread's affinity mask.

        Policy mirrors the paper's description: "the scheduler will place
        it on a core based on the system load and some degree of affinity
        with the previously assigned core".  Like CFS scheduling
        domains, balancing prefers PUs under the thread's current LLC;
        it spills to other cache domains only when the local domain is
        distinctly busier.
        """
        aff = thread.affinity_list
        if len(aff) == 1:
            return aff[0]
        last = thread.last_pu
        # inlined self.load() over the affinity mask — this runs for
        # every placement and dominated the replay profile; arithmetic
        # and iteration order match load() exactly
        running = self._running
        pending = self._pending
        rq_items = self._rq_items
        busy_sibs = self._busy_sibs
        loads = {}
        global_best = None
        for p in aff:
            l = (
                len(rq_items[p])
                + pending[p]
                + (1.0 if running[p] else 0.0)
            )
            k = busy_sibs[p]
            while k:
                l += 0.45
                k -= 1
            loads[p] = l
            if global_best is None or l < global_best:
                global_best = l
        roll = self._rng.random()
        wander = roll < self.migrate_prob
        # a rarer event models the kernel's idle balancer pulling the
        # thread to any socket; ordinary wander stays within the domain
        rebalance = roll < self.rebalance_prob
        if loads.get(last) == 0 and not wander:
            return last
        pool = aff
        best = global_best
        if last is not None and not rebalance:
            # CFS-style domain preference: stay under the current LLC
            # unless the local domain is distinctly busier; a wander
            # event models the idle balancer pulling the thread anywhere
            llc_of = self._llc_of
            key = (aff, llc_of[last])
            local = self._local_pools.get(key)
            if local is None:
                local = [p for p in aff if llc_of[p] == llc_of[last]]
                self._local_pools[key] = local
            if local:
                local_best = loads[local[0]]
                for p in local:
                    v = loads[p]
                    if v < local_best:
                        local_best = v
                if local_best <= global_best + 0.25:
                    pool = local
                    best = local_best
        cands = [p for p in pool if loads[p] == best]
        if last in cands and not wander:
            return last
        return self._rng.choice(cands)

    def submit(self, thread) -> int:
        """Enqueue a runnable thread; returns the chosen PU."""
        pu = self.choose_pu(thread)
        if thread.last_pu is not None and pu != thread.last_pu:
            thread.pending_migration = True
            self.trace.migrations[thread.name] += 1
            self.trace.record(self.sim.now, thread.name, pu, "migrate")
        if self._pending[pu] == 0 and self._running[pu] is None:
            # idle -> busy: this PU now burdens its SMT siblings
            for s in self._smt_other[pu]:
                self._busy_sibs[s] += 1
        self._pending[pu] += 1
        self.trace.record(self.sim.now, thread.name, pu, "ready")
        self.runqueues[pu].put(thread)
        return pu

    # -- dispatch loop -------------------------------------------------------

    def _smt_factor(self, pu: int) -> float:
        """Execution-rate multiplier given SMT sibling activity."""
        running = self._running
        for sib in self._smt_other[pu]:
            if running[sib] is not None:
                return self.smt_throughput
        return 1.0

    def _dispatch(self, pu: int):
        """Daemon process serving one PU's run queue."""
        sim = self.sim
        rq = self.runqueues[pu]
        rq_items = self._rq_items[pu]
        machine = self.machine
        trace = self.trace
        record = trace.record
        residency = trace.add_residency
        dispatches = trace.dispatches
        quantum = self.quantum
        pending = self._pending
        running = self._running
        llc = self._llc_of[pu]
        smt_other = self._smt_other[pu]
        smt_throughput = self.smt_throughput
        # one mutable Timeout per dispatcher: the request is consumed
        # synchronously at the yield, so rewriting .delay per slice is
        # safe and saves an allocation every quantum
        slice_timeout = Timeout(0.0)
        while True:
            thread = yield rq.get()
            if thread is None:
                return
            pending[pu] -= 1
            running[pu] = thread
            dispatches[thread.name] += 1
            cost = thread.pending_cost
            label = cost.label if cost is not None else ""
            record(sim.now, thread.name, pu, f"run:{label}")
            machine.on_dispatch(thread, pu)
            thread.current_pu = pu
            preempted = False
            faults = machine.faults
            remaining = thread.burst_remaining
            while remaining > 1e-12:
                factor = 1.0
                for sib in smt_other:  # inlined _smt_factor
                    if running[sib] is not None:
                        factor = smt_throughput
                        break
                if faults is not None:
                    # straggler core: the PU retires work at a fraction
                    # of its rate for the fault window (re-evaluated per
                    # slice, so windows land at slice granularity)
                    factor *= faults.speed_factor(pu)
                need = remaining / factor
                slice_wall = quantum if quantum < need else need
                t0 = sim.now
                # float() mirrors Timeout.__init__'s cast: burst math can
                # carry numpy scalars, and the sim clock must stay float
                slice_timeout.delay = float(slice_wall)
                yield slice_timeout
                dt = sim.now - t0
                remaining -= dt * factor
                thread.cpu_time += dt
                residency(thread.name, pu, dt)
                if remaining > 1e-12 and rq_items:
                    preempted = True
                    break
            thread.burst_remaining = remaining
            thread.current_pu = None
            thread.last_pu = pu
            thread.last_llc = llc
            running[pu] = None
            if pending[pu] == 0:
                # busy -> idle: lift the SMT burden off the siblings
                # (a preempt resubmit below may immediately restore it)
                for s in self._smt_other[pu]:
                    self._busy_sibs[s] -= 1
            if preempted:
                record(sim.now, thread.name, pu, "preempt")
                machine.on_burst_pause(thread, pu)
                self.submit(thread)
            else:
                record(sim.now, thread.name, pu, "done")
                machine.on_burst_end(thread, pu)
                thread._burst_done.fire(sim=sim)
