"""Analytic cache-warmth model used during timing simulation.

A full per-access cache simulation (:mod:`repro.machine.cache`) is far
too slow to sit inside the timing loop, so the machine model tracks
*regions* — named data blocks such as "thread 2's atom partition" or
"the neighbor list" — and how many bytes of each region are resident in
every last-level cache.  Residency follows LRU-of-regions semantics:
touching a region installs its missed bytes and pushes least-recently
used regions out once the cache overflows.

This coarse model is exactly what the paper's phenomena need:

* a thread migrating to a core under a different LLC finds zero bytes of
  its partition resident → cold misses (Fig. 2 / Table III),
* threads sharing an LLC keep one copy of shared data warm (Table III,
  8 threads on one 8-core socket),
* a stream of short-lived temporary objects (``Vector3`` churn, §V-B)
  occupies residency and evicts useful data — cache pollution.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True, slots=True)
class Region:
    """A named block of simulated data.

    ``shared`` marks data read by several threads (e.g. ghost atoms,
    reduction buffers); sharing affects cross-socket traffic accounting.
    """

    name: str
    size_bytes: int
    shared: bool = False

    def __post_init__(self):
        if self.size_bytes < 0:
            raise ValueError(f"negative region size: {self.size_bytes}")


class LlcState:
    """Warmth of one last-level cache.

    ``touch(region, n_bytes)`` models reading ``n_bytes`` spread uniformly
    over the region and returns how many bytes missed (must come from
    DRAM or a remote cache).  The hit fraction equals the fraction of the
    region currently resident.
    """

    __slots__ = (
        "llc_id",
        "capacity",
        "_resident",
        "_used",
        "bytes_hit",
        "bytes_missed",
    )

    #: batches at least this long take the vectorized touch_many path —
    #: below this, numpy's per-array overhead loses to the scalar loop
    _BATCH_MIN = 32

    def __init__(self, llc_id: int, capacity_bytes: int):
        self.llc_id = llc_id
        self.capacity = capacity_bytes
        # region name -> (region, resident_bytes); insertion order = LRU
        self._resident: "OrderedDict[str, Tuple[Region, float]]" = OrderedDict()
        self._used = 0.0
        self.bytes_hit = 0.0
        self.bytes_missed = 0.0

    @property
    def used_bytes(self) -> float:
        return self._used

    def resident_bytes(self, region: Region) -> float:
        """Bytes of ``region`` currently held by this cache."""
        entry = self._resident.get(region.name)
        return entry[1] if entry else 0.0

    def resident_fraction(self, region: Region) -> float:
        """Fraction of ``region`` resident (0 = cold, 1 = fully warm)."""
        if region.size_bytes == 0:
            return 1.0
        return self.resident_bytes(region) / region.size_bytes

    def touch(self, region: Region, n_bytes: float) -> float:
        """Read ``n_bytes`` of ``region``; returns missed bytes."""
        size = region.size_bytes
        if n_bytes <= 0 or size == 0:
            return 0.0
        # two-arg min() is measurable at this call rate; the branch
        # computes the identical value
        n_bytes = float(n_bytes) if n_bytes <= size else float(size)
        resident = self._resident
        name = region.name
        entry = resident.get(name)
        prev = entry[1] if entry else 0.0
        hit = n_bytes * (prev / size)
        miss = n_bytes - hit
        self.bytes_hit += hit
        self.bytes_missed += miss
        if miss > 0:
            new = prev + miss
            if new > size:
                new = size
            resident[name] = (region, new)
            self._used += new - prev
            if self._used > self.capacity:
                self._evict_overflow(keep=name)
        if name in resident:
            resident.move_to_end(name)
        return miss

    def touch_many(self, traffics) -> list:
        """Read a batch of :class:`~repro.machine.cost.Traffic` records;
        returns the per-record missed bytes, in order.

        Equivalent to ``[touch(t.region, t.n_bytes) for t in traffics]``
        bit for bit — each record's hit fraction reflects every earlier
        record's install, and the hit/miss counters accumulate in record
        order.  Large batches of *distinct, eviction-free* touches take a
        numpy path that vectorizes the warmth arithmetic (elementwise
        float64 ops round identically to the scalar ones); any batch the
        fast path can't prove safe falls back to the scalar loop.
        """
        if len(traffics) < self._BATCH_MIN:
            touch = self.touch
            return [touch(t.region, t.n_bytes) for t in traffics]
        fast = self._touch_many_numpy(traffics)
        if fast is not None:
            return fast
        touch = self.touch
        return [touch(t.region, t.n_bytes) for t in traffics]

    def _touch_many_numpy(self, traffics):
        """Vectorized touch of distinct regions, or None when the batch
        needs the stateful scalar path (duplicates, zero-size regions,
        or a projected overflow that would evict mid-batch)."""
        resident = self._resident
        names = []
        sizes = np.empty(len(traffics))
        wants = np.empty(len(traffics))
        prevs = np.empty(len(traffics))
        seen = set()
        for i, t in enumerate(traffics):
            region = t.region
            size = region.size_bytes
            if size == 0 or t.n_bytes <= 0 or region.name in seen:
                return None
            seen.add(region.name)
            names.append(region.name)
            sizes[i] = size
            wants[i] = t.n_bytes
            entry = resident.get(region.name)
            prevs[i] = entry[1] if entry else 0.0
        reads = np.minimum(wants, sizes)
        hits = reads * (prevs / sizes)
        misses = reads - hits
        news = np.minimum(sizes, prevs + misses)
        if self._used + float(np.sum(news - prevs)) > self.capacity:
            return None  # would evict: replay through the scalar path
        out = []
        used = self._used
        bytes_hit = self.bytes_hit
        bytes_missed = self.bytes_missed
        for i, t in enumerate(traffics):
            hit = float(hits[i])
            miss = float(misses[i])
            bytes_hit += hit
            bytes_missed += miss
            if miss > 0:
                new = float(news[i])
                resident[names[i]] = (t.region, new)
                used += new - prevs[i]
            if names[i] in resident:
                resident.move_to_end(names[i])
            out.append(miss)
        self._used = used
        self.bytes_hit = bytes_hit
        self.bytes_missed = bytes_missed
        return out

    def install(self, region: Region, n_bytes: float) -> None:
        """Place bytes in the cache without counting hits/misses (used
        for write traffic, which allocates lines)."""
        self._install(region, min(n_bytes, region.size_bytes))
        self._promote(region)

    def evict_region(self, region: Region) -> None:
        """Invalidate every byte of one region (coherence action)."""
        entry = self._resident.pop(region.name, None)
        if entry:
            self._used -= entry[1]

    def flush(self) -> None:
        """Drop all residency (cold cache)."""
        self._resident.clear()
        self._used = 0.0

    # -- internals -------------------------------------------------------

    def _promote(self, region: Region) -> None:
        if region.name in self._resident:
            self._resident.move_to_end(region.name)

    def _install(self, region: Region, add_bytes: float) -> None:
        if add_bytes <= 0:
            return
        resident = self._resident
        entry = resident.get(region.name)
        prev = entry[1] if entry else 0.0
        size = region.size_bytes
        new = prev + add_bytes
        if new > size:
            new = size
        resident[region.name] = (region, new)
        self._used += new - prev
        if self._used > self.capacity:
            self._evict_overflow(keep=region.name)

    def _evict_overflow(self, keep: str) -> None:
        while self._used > self.capacity and len(self._resident) > 1:
            name = next(iter(self._resident))
            if name == keep:
                # shrink the protected region last, from its own tail
                break
            _, size = self._resident.pop(name)
            self._used -= size
        if self._used > self.capacity:
            # single region larger than the cache: clamp to capacity
            region, size = self._resident[keep]
            over = self._used - self.capacity
            self._resident[keep] = (region, size - over)
            self._used = self.capacity

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        mb = self._used / 2**20
        return (
            f"LlcState(#{self.llc_id}, {mb:.2f} MB used, "
            f"{len(self._resident)} regions)"
        )
