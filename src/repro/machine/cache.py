"""Trace-driven set-associative cache simulation.

This is the "hardware performance monitoring unit" of the reproduction:
the data-packing study (§V-A) measured mid-level and last-level cache
miss rates with VTune to decide whether object reordering had worked.
Here we can do what the paper could not — feed the *actual* address
stream produced by the heap model and the MD engine's access pattern
through a faithful cache model and read exact miss counts.

:class:`SetAssocCache` is a classic set-associative LRU cache; LRU
bookkeeping is kept per set in a plain list ordered by recency (small
associativity makes the list operations cheap).  :class:`CacheHierarchy`
chains levels with inclusive semantics: an access missing L1 proceeds to
L2, and so on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.machine.topology import CacheLevel


@dataclass
class CacheStats:
    """Hit/miss counters for one cache instance."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self.accesses = self.hits = self.misses = self.evictions = 0


class SetAssocCache:
    """A set-associative cache with true LRU replacement.

    Addresses are byte addresses; the cache operates on aligned lines.
    ``access`` returns True on hit.  The same instance may be shared by
    several upstream caches (e.g. an LLC below several L2s).
    """

    def __init__(self, level: CacheLevel, name: str = ""):
        self.level = level
        self.name = name or f"L{level.level}"
        self._n_sets = level.n_sets
        self._assoc = level.associativity
        self._line_shift = level.line_bytes.bit_length() - 1
        if (1 << self._line_shift) != level.line_bytes:
            raise ValueError("line size must be a power of two")
        # per-set list of tags, most-recently-used last
        self._sets: List[List[int]] = [[] for _ in range(self._n_sets)]
        self.stats = CacheStats()

    def _locate(self, addr: int) -> Tuple[int, int]:
        line = addr >> self._line_shift
        return line % self._n_sets, line // self._n_sets

    def access(self, addr: int) -> bool:
        """Touch one byte address; returns True on hit."""
        set_idx, tag = self._locate(addr)
        ways = self._sets[set_idx]
        self.stats.accesses += 1
        try:
            ways.remove(tag)
        except ValueError:
            self.stats.misses += 1
            if len(ways) >= self._assoc:
                ways.pop(0)
                self.stats.evictions += 1
            ways.append(tag)
            return False
        self.stats.hits += 1
        ways.append(tag)
        return True

    def contains(self, addr: int) -> bool:
        """Check residency without updating LRU or counters."""
        set_idx, tag = self._locate(addr)
        return tag in self._sets[set_idx]

    def flush(self) -> None:
        """Drop every cached line (a cold restart)."""
        for ways in self._sets:
            ways.clear()

    @property
    def resident_lines(self) -> int:
        return sum(len(w) for w in self._sets)

    def run_trace(self, addrs: Iterable[int]) -> CacheStats:
        """Feed a full address trace; returns the stats object."""
        access = self.access
        for a in addrs:
            access(a)
        return self.stats


class CacheHierarchy:
    """An inclusive L1/L2/LLC chain for one core.

    ``access`` walks down on miss, returning the deepest level that hit
    (1-based) or 0 for a DRAM access.  The LLC instance may be shared:
    build it once and pass it to several hierarchies.
    """

    def __init__(
        self,
        levels: Tuple[CacheLevel, ...],
        shared_llc: Optional[SetAssocCache] = None,
        name: str = "",
    ):
        self.name = name
        self.caches: List[SetAssocCache] = []
        for i, lvl in enumerate(levels):
            is_last = i == len(levels) - 1
            if is_last and shared_llc is not None:
                if shared_llc.level is not lvl and shared_llc.level != lvl:
                    raise ValueError("shared LLC spec mismatch")
                self.caches.append(shared_llc)
            else:
                self.caches.append(
                    SetAssocCache(lvl, name=f"{name}.L{lvl.level}")
                )

    def access(self, addr: int) -> int:
        """Access an address; returns the level that hit (0 = memory)."""
        for cache in self.caches:
            if cache.access(addr):
                return cache.level.level
        return 0

    def run_trace(self, addrs: Iterable[int]) -> Dict[str, CacheStats]:
        """Feed a full address trace through every level."""
        for a in addrs:
            self.access(a)
        return self.stats()

    def stats(self) -> Dict[str, CacheStats]:
        """Per-level hit/miss counters, keyed "L1"/"L2"/...."""
        return {f"L{c.level.level}": c.stats for c in self.caches}

    def flush(self) -> None:
        """Cold-restart every level of the hierarchy."""
        for c in self.caches:
            c.flush()

    def miss_rates(self) -> Dict[str, float]:
        """Per-level miss rates — what VTune's HW counters reported."""
        return {
            f"L{c.level.level}": c.stats.miss_rate for c in self.caches
        }


def trace_from_accesses(
    base_addrs: np.ndarray, order: np.ndarray, record_bytes: int, fields: int = 1
) -> np.ndarray:
    """Expand an object-access sequence into a byte-address trace.

    ``base_addrs[i]`` is the heap address of object ``i``;
    ``order`` is the sequence of object indices actually touched;
    each touch reads ``fields`` words spread over ``record_bytes``.
    """
    base = base_addrs[order]
    if fields == 1:
        return base
    offsets = np.linspace(0, max(record_bytes - 8, 0), fields).astype(np.int64)
    return (base[:, None] + offsets[None, :]).ravel()
