"""Work-cost descriptors: what one task costs the machine.

The parallel MD engine executes its physics for real (NumPy) and counts
what it did — pairs examined, bond terms evaluated, bytes gathered.
Those counts are converted by :mod:`repro.core.costmodel` into
:class:`WorkCost` objects, which the simulated machine turns into time.

A :class:`WorkCost` has an arithmetic part (``cycles``) and a memory
part (reads/writes against named :class:`~repro.machine.cachestate.Region`
blocks).  The machine applies a roofline rule: a burst's duration is the
*maximum* of its compute time and its memory time, since real cores
overlap outstanding misses with arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.machine.cachestate import Region


@dataclass(frozen=True, slots=True)
class Traffic:
    """Bytes moved against one region by one task."""

    region: Region
    n_bytes: float
    write: bool = False

    def __post_init__(self):
        if self.n_bytes < 0:
            raise ValueError(f"negative traffic: {self.n_bytes}")


@dataclass(frozen=True, slots=True)
class WorkCost:
    """The machine-level cost of one task.

    Parameters
    ----------
    cycles:
        Arithmetic work in core clock cycles.
    reads / writes:
        Memory traffic as ``Traffic`` tuples.  Reads check cache warmth;
        writes install into the executing core's LLC and move the
        region's *home* to that socket (later remote readers pay the
        cross-socket penalty).
    label:
        Phase/debug tag carried into scheduler traces.
    """

    cycles: float = 0.0
    reads: Tuple[Traffic, ...] = ()
    writes: Tuple[Traffic, ...] = ()
    label: str = ""
    #: read_bytes + write_bytes, fixed by the frozen traffic tuples —
    #: computed once here because the dispatch hot path checks it per
    #: burst (derived: excluded from init/repr/equality)
    _total_bytes: float = field(init=False, repr=False, compare=False)
    #: (region, n_bytes) per read — what migration_penalty re-fetches;
    #: precomputed because dispatch installs it on the thread per burst
    _hot_regions: tuple = field(init=False, repr=False, compare=False)

    def __post_init__(self):
        if self.cycles < 0:
            raise ValueError(f"negative cycles: {self.cycles}")
        object.__setattr__(
            self,
            "_total_bytes",
            sum(t.n_bytes for t in self.reads)
            + sum(t.n_bytes for t in self.writes),
        )
        object.__setattr__(
            self,
            "_hot_regions",
            tuple((t.region, t.n_bytes) for t in self.reads),
        )

    @property
    def read_bytes(self) -> float:
        return sum(t.n_bytes for t in self.reads)

    @property
    def write_bytes(self) -> float:
        return sum(t.n_bytes for t in self.writes)

    @property
    def total_bytes(self) -> float:
        return self._total_bytes

    def arithmetic_intensity(self) -> float:
        """Cycles per byte — the roofline knob.  inf for pure compute."""
        b = self.total_bytes
        return self.cycles / b if b else float("inf")

    def scaled(self, factor: float) -> "WorkCost":
        """Uniformly scale compute and traffic (used by instrumentation
        overhead models, e.g. VisualVM's ~4x inflation)."""
        if factor < 0:
            raise ValueError(f"negative scale: {factor}")
        return WorkCost(
            cycles=self.cycles * factor,
            reads=tuple(
                Traffic(t.region, t.n_bytes * factor, t.write)
                for t in self.reads
            ),
            writes=tuple(
                Traffic(t.region, t.n_bytes * factor, t.write)
                for t in self.writes
            ),
            label=self.label,
        )

    def __add__(self, other: "WorkCost") -> "WorkCost":
        if not isinstance(other, WorkCost):
            return NotImplemented
        return WorkCost(
            cycles=self.cycles + other.cycles,
            reads=self.reads + other.reads,
            writes=self.writes + other.writes,
            label=self.label or other.label,
        )


def compute_only(cycles: float, label: str = "") -> WorkCost:
    """A pure-arithmetic cost (no memory traffic beyond caches)."""
    return WorkCost(cycles=cycles, label=label)


def streaming(
    cycles: float, region: Region, n_bytes: float, label: str = ""
) -> WorkCost:
    """A cost that reads ``n_bytes`` of one region linearly."""
    return WorkCost(
        cycles=cycles, reads=(Traffic(region, n_bytes),), label=label
    )
