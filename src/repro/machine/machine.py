"""The SimMachine facade and SimThread.

:class:`SimMachine` ties the pieces together: a DES simulator, the
topology, per-LLC warmth states, per-socket memory controllers, and the
OS scheduler.  :class:`SimThread` is the user-facing thread abstraction:
its *body* is a generator that yields

* :class:`~repro.machine.cost.WorkCost` — execute that much work on a
  core (placed by the scheduler; this is where time passes), or
* any DES request (lock acquire, event wait, timeout) — the thread
  *parks*: it holds no core while blocked, and its next burst placement
  may migrate it, exactly the synchronization-driven migration of §V-B.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.des import Event, Lock, Simulator
from repro.machine.cachestate import LlcState
from repro.machine.cost import WorkCost
from repro.machine.memory import MemorySystem
from repro.machine.scheduler import Scheduler
from repro.machine.topology import MachineSpec, Topology


class SimThread:
    """A simulated software thread.

    Parameters
    ----------
    machine:
        The owning :class:`SimMachine`.
    body:
        Generator yielding :class:`WorkCost` and DES requests.
    name:
        Trace name.
    affinity:
        Optional iterable of PU ids (the ``sched_setaffinity`` mask).
        None means all PUs (OS-scheduled).
    """

    def __init__(
        self,
        machine: "SimMachine",
        body,
        name: str,
        affinity: Optional[Iterable[int]] = None,
    ):
        self.machine = machine
        self.name = name
        self.set_affinity(affinity)
        self.last_pu: Optional[int] = None
        self.last_llc: Optional[int] = None
        self.current_pu: Optional[int] = None
        self.burst_remaining: float = 0.0
        self.pending_cost: Optional[WorkCost] = None
        self.pending_migration = False
        self.hot_regions: tuple = ()
        self._burst_done: Optional[Event] = None
        self._streaming = False
        #: wall seconds spent executing on a core
        self.cpu_time = 0.0
        #: number of bursts completed
        self.burst_count = 0
        self.proc = machine.sim.spawn(self._drive(body), name=name)

    def set_affinity(self, affinity: Optional[Iterable[int]]) -> None:
        """Install a new affinity mask (takes effect at next placement)."""
        if affinity is None:
            mask = self.machine.topology.mask_all()
        else:
            mask = frozenset(int(p) for p in affinity)
            bad = mask - set(self.machine.topology.pus())
            if bad:
                raise ValueError(f"affinity references unknown PUs: {sorted(bad)}")
            if not mask:
                raise ValueError("empty affinity mask")
        self.affinity = mask
        # tuple: placement hashes it to cache per-LLC candidate pools
        self.affinity_list = tuple(sorted(mask))

    @property
    def terminated(self) -> Event:
        return self.proc.terminated

    def _drive(self, body):
        value = None
        error: Optional[BaseException] = None
        send = body.send
        burst_name = f"{self.name}.burst"
        submit = self.machine.scheduler.submit
        while True:
            try:
                item = body.throw(error) if error is not None else send(value)
            except StopIteration as stop:
                return stop.value
            error = None
            if isinstance(item, WorkCost):
                self.pending_cost = item
                self.burst_remaining = 0.0
                self._burst_done = Event(name=burst_name)
                submit(self)
                try:
                    yield self._burst_done
                    value = None
                except BaseException as exc:  # interrupt while running
                    error = exc
            else:
                try:
                    value = yield item
                except BaseException as exc:
                    error = exc

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SimThread({self.name!r}, cpu_time={self.cpu_time:.4f})"


class SimMachine:
    """A deterministic simulated multicore machine.

    Example
    -------
    >>> from repro.machine import SimMachine, CORE_I7_920, WorkCost
    >>> m = SimMachine(CORE_I7_920)
    >>> def body():
    ...     yield WorkCost(cycles=2.66e9)   # one second of arithmetic
    >>> t = m.thread(body(), "worker")
    >>> m.run()
    >>> round(m.now, 2)
    1.0
    """

    def __init__(
        self,
        spec: MachineSpec,
        *,
        seed: int = 0,
        quantum: float = 0.002,
        migrate_prob: float = 0.25,
        smt_throughput: float = 0.62,
        overlap: float = 0.35,
        writeback_fraction: float = 0.5,
    ):
        self.spec = spec
        self.sim = Simulator()
        self.topology = Topology(spec)
        self.llc_states: List[LlcState] = [
            LlcState(i, spec.llc.size_bytes)
            for i in range(self.topology.n_llc_groups)
        ]
        self.memory = MemorySystem(spec, self.topology)
        # burst pricing runs once per dispatched burst; flatten the
        # pu -> llc/controller/socket resolution chains into tuples
        n_pus = spec.n_pus
        self._llc_of_pu = tuple(
            self.llc_states[self.topology.llc_of(p)] for p in range(n_pus)
        )
        self._ctrl_of_pu = tuple(
            self.memory.controller_for_pu(p) for p in range(n_pus)
        )
        self._socket_of_pu = tuple(
            self.topology.socket_of(p) for p in range(n_pus)
        )
        #: region name -> socket that last wrote it (home for remote reads)
        self.region_home: Dict[str, int] = {}
        self.overlap = overlap
        self.writeback_fraction = writeback_fraction
        self.scheduler = Scheduler(
            self,
            quantum=quantum,
            migrate_prob=migrate_prob,
            smt_throughput=smt_throughput,
            seed=seed,
        )
        self.threads: List[SimThread] = []
        #: live fault state (repro.faults.injector.ActiveFaults) when a
        #: fault plan is armed; the scheduler multiplies its slice math
        #: by faults.speed_factor(pu) (straggler cores) and the replay
        #: scales injected GC pauses by faults.gc_multiplier
        self.faults = None

    # -- time --------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.sim.now

    def run(self, until: Optional[float] = None) -> float:
        """Advance the simulation; see :meth:`Simulator.run`."""
        return self.sim.run(until=until)

    # -- construction --------------------------------------------------------

    def thread(
        self, body, name: str, affinity: Optional[Iterable[int]] = None
    ) -> SimThread:
        """Create (and start) a simulated thread from a generator body."""
        t = SimThread(self, body, name, affinity)
        self.threads.append(t)
        return t

    def lock(self, name: str = "") -> Lock:
        """A FIFO mutex living in this machine's simulated time."""
        return Lock(self.sim, name=name)

    def llc_for_pu(self, pu: int) -> LlcState:
        """The warmth state of the LLC serving a PU."""
        return self._llc_of_pu[pu]

    # -- cost evaluation -------------------------------------------------------

    def burst_duration(self, pu: int, cost: WorkCost) -> float:
        """Seconds the given work takes on ``pu`` right now.

        Roofline composition: compute and memory streams overlap, so the
        duration is ``max(compute, memory) + overlap * min(...)`` — the
        ``overlap`` parameter (< 1) models imperfect overlap.
        """
        compute = cost.cycles / self.spec.freq_hz
        llc = self._llc_of_pu[pu]
        ctrl = self._ctrl_of_pu[pu]
        socket = self._socket_of_pu[pu]
        region_home = self.region_home
        transfer_time = ctrl.transfer_time
        mem = 0.0
        reads = cost.reads
        if reads:
            # batch the warmth updates; transfer_time stays per-record
            # and in order (it accumulates controller statistics)
            misses = llc.touch_many(reads)
            for t, miss in zip(reads, misses):
                region = t.region
                home = region_home.get(region.name)
                remote = (
                    region.shared and home is not None and home != socket
                )
                mem += transfer_time(miss, remote=remote, extra_streams=1)
        for t in cost.writes:
            llc.install(t.region, t.n_bytes)
            region_home[t.region.name] = socket
            # coherence: writing invalidates every other cache's copy,
            # so a thread that migrates away finds its data gone
            for other in self.llc_states:
                if other is not llc:
                    other.evict_region(t.region)
            mem += transfer_time(
                t.n_bytes * self.writeback_fraction, extra_streams=1
            )
        if compute <= mem:
            return mem + self.overlap * compute
        return compute + self.overlap * mem

    def migration_penalty(self, thread: SimThread, pu: int) -> float:
        """Cold-cache cost of arriving on a PU under a different LLC.

        The thread's recently used regions are not resident in the new
        LLC; re-fetching the touched bytes is charged up front (and warms
        the new cache)."""
        if not thread.hot_regions:
            return 0.0
        llc = self._llc_of_pu[pu]
        ctrl = self._ctrl_of_pu[pu]
        penalty = 0.0
        for region, n_bytes in thread.hot_regions:
            miss = llc.touch(region, n_bytes)
            penalty += ctrl.transfer_time(miss, extra_streams=1)
        return penalty

    # -- scheduler callbacks ---------------------------------------------------

    def on_dispatch(self, thread: SimThread, pu: int) -> None:
        """Scheduler callback: price a burst as it lands on a PU."""
        cost = thread.pending_cost
        fresh = thread.burst_remaining <= 1e-12 and cost is not None
        if fresh:
            duration = self.burst_duration(pu, cost)
            duration += self.scheduler.ctx_switch
            thread.burst_remaining = duration
            thread.hot_regions = cost._hot_regions
        # cold-cache cost of arriving under a different LLC (applies to
        # both fresh bursts after a park and resumed preempted bursts;
        # for fresh bursts burst_duration() already touched the new LLC,
        # so only charge the explicit penalty on resume)
        if thread.pending_migration:
            if (
                not fresh
                and thread.last_llc is not None
                and self.topology.llc_of(pu) != thread.last_llc
            ):
                thread.burst_remaining += self.migration_penalty(thread, pu)
            thread.pending_migration = False
        if cost is not None and cost._total_bytes > 0:
            self._ctrl_of_pu[pu].begin_stream()
            thread._streaming = True

    def on_burst_pause(self, thread: SimThread, pu: int) -> None:
        """Scheduler callback: the burst was preempted mid-flight."""
        if thread._streaming:
            self._ctrl_of_pu[pu].end_stream()
            thread._streaming = False

    def on_burst_end(self, thread: SimThread, pu: int) -> None:
        """Scheduler callback: the burst completed."""
        if thread._streaming:
            self._ctrl_of_pu[pu].end_stream()
            thread._streaming = False
        thread.burst_count += 1
        thread.pending_cost = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SimMachine({self.spec.name!r}, now={self.now:.4f})"
