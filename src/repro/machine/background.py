"""Background system load for the simulated machine.

Table III's low-core-count rows show OS scheduling *beating* pinning:
"with low core counts, more flexibility regarding on which core to
assign a thread results in better performance, as the OS can avoid
cores loaded with other tasks."  For that to be reproducible the
machine needs other tasks.  This module injects daemon-style background
threads — periodic CPU bursts pinned to specific PUs (system services,
GUI compositor, kernel threads) — so an OS-scheduled workload can route
around them while a pinned workload sharing those PUs must timeshare.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.des import Timeout
from repro.machine.cost import WorkCost
from repro.machine.machine import SimMachine, SimThread


def daemon_body(
    machine: SimMachine,
    busy_seconds: float,
    idle_seconds: float,
    duration: Optional[float] = None,
):
    """Generator body: burst/sleep forever (or until ``duration``)."""
    cycles = busy_seconds * machine.spec.freq_hz
    while True:
        if duration is not None and machine.now >= duration:
            return
        yield WorkCost(cycles=cycles, label="background")
        yield Timeout(idle_seconds)


def inject_background_load(
    machine: SimMachine,
    pus: Iterable[int],
    *,
    utilization: float = 0.25,
    period: float = 0.004,
    duration: Optional[float] = None,
    name_prefix: str = "daemon",
) -> List[SimThread]:
    """Pin one periodic background task to each PU in ``pus``.

    Each task is busy ``utilization`` of every ``period`` seconds.
    Returns the created threads.
    """
    if not 0.0 < utilization < 1.0:
        raise ValueError(f"utilization must be in (0,1): {utilization}")
    busy = period * utilization
    idle = period - busy
    threads = []
    for pu in pus:
        body = daemon_body(machine, busy, idle, duration)
        threads.append(
            machine.thread(body, f"{name_prefix}{pu}", affinity=[pu])
        )
    return threads


def inject_mobile_load(
    machine: SimMachine,
    n_tasks: int,
    *,
    utilization: float = 0.3,
    period: float = 0.004,
    duration: Optional[float] = None,
    name_prefix: str = "svc",
) -> List[SimThread]:
    """OS-scheduled background services (no affinity): they drift away
    from busy cores, but their wakeups keep perturbing placement — the
    "cores loaded with other tasks" of Table III."""
    if not 0.0 < utilization < 1.0:
        raise ValueError(f"utilization must be in (0,1): {utilization}")
    busy = period * utilization
    idle = period - busy
    threads = []
    for i in range(n_tasks):
        body = daemon_body(machine, busy, idle, duration)
        threads.append(machine.thread(body, f"{name_prefix}{i}"))
    return threads
