"""Finite-bandwidth memory controllers.

Each socket owns one controller.  Cores draw at most ``core_bw`` bytes/s
on their own; when several cores stream concurrently the socket's peak
``socket_bw`` is divided between the active streams (processor-sharing
approximation, sampled at burst start).  This is the mechanism that caps
the Al-1000 / Lennard-Jones scaling in Fig. 1: each added core gets a
smaller slice of a fixed DRAM budget, so a bandwidth-bound phase stops
speeding up long before core count runs out.
"""

from __future__ import annotations

from typing import Dict, List


class MemoryController:
    """Bandwidth arbiter for one socket.

    Streams register while a burst with memory traffic executes; the
    effective per-stream rate is ``min(core_bw, socket_bw / n_active)``.
    Remote accesses (from another socket) pay a latency-derived rate
    penalty and also consume this controller's bandwidth.
    """

    def __init__(
        self,
        socket_id: int,
        socket_bw: float,
        core_bw: float,
        remote_penalty: float = 1.7,
    ):
        if socket_bw <= 0 or core_bw <= 0:
            raise ValueError("bandwidths must be positive")
        self.socket_id = socket_id
        self.socket_bw = float(socket_bw)
        self.core_bw = float(core_bw)
        self.remote_penalty = float(remote_penalty)
        self._active = 0
        self.bytes_served = 0.0
        self.bytes_remote = 0.0
        self.peak_active = 0

    @property
    def active_streams(self) -> int:
        return self._active

    def begin_stream(self) -> None:
        """Register one active memory stream (a running burst)."""
        self._active += 1
        self.peak_active = max(self.peak_active, self._active)

    def end_stream(self) -> None:
        """Deregister a stream begun with :meth:`begin_stream`."""
        if self._active <= 0:
            raise RuntimeError(
                f"memory controller {self.socket_id}: unbalanced end_stream"
            )
        self._active -= 1

    def effective_rate(self, *, extra_streams: int = 0) -> float:
        """Bytes/s one stream receives right now.

        ``extra_streams`` lets a caller include itself before it has
        registered (rate sampled at burst start).
        """
        n = max(1, self._active + extra_streams)
        return min(self.core_bw, self.socket_bw / n)

    def transfer_time(
        self, n_bytes: float, *, remote: bool = False, extra_streams: int = 0
    ) -> float:
        """Seconds to move ``n_bytes`` at the current contention level."""
        if n_bytes <= 0:
            return 0.0
        rate = self.effective_rate(extra_streams=extra_streams)
        if remote:
            rate /= self.remote_penalty
            self.bytes_remote += n_bytes
        self.bytes_served += n_bytes
        return n_bytes / rate


class MemorySystem:
    """All sockets' controllers plus interconnect accounting."""

    def __init__(self, spec, topology):
        self.spec = spec
        self.topology = topology
        self.controllers: List[MemoryController] = [
            MemoryController(
                s, spec.socket_bw, spec.core_bw, spec.remote_penalty
            )
            for s in range(spec.sockets)
        ]

    def controller_for_pu(self, pu: int) -> MemoryController:
        """The memory controller local to a PU's socket."""
        return self.controllers[self.topology.socket_of(pu)]

    def stats(self) -> Dict[int, Dict[str, float]]:
        """Per-socket traffic totals (served/remote bytes, peak load)."""
        return {
            c.socket_id: {
                "bytes_served": c.bytes_served,
                "bytes_remote": c.bytes_remote,
                "peak_active": c.peak_active,
            }
            for c in self.controllers
        }
