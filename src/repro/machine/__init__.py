"""Simulated multicore machine.

The paper's performance findings hinge on hardware behaviour that a
1-CPU GIL-bound Python host cannot exhibit: cache sharing between cores,
finite DRAM bandwidth, OS thread migration, and affinity pinning.  This
package models those mechanisms as a deterministic discrete-event
simulation on top of :mod:`repro.des`:

* :mod:`~repro.machine.topology` — hwloc-style topology trees, including
  the paper's three test machines (Table II),
* :mod:`~repro.machine.cache` — a trace-driven set-associative LRU cache
  simulator (used for the data-packing study, §V-A),
* :mod:`~repro.machine.cachestate` — an analytic region-warmth model used
  during timing simulation,
* :mod:`~repro.machine.memory` — per-socket finite-bandwidth memory
  controllers,
* :mod:`~repro.machine.cost` — work-cost descriptors that turn measured
  work counts into simulated durations,
* :mod:`~repro.machine.scheduler` — run queues, placement, migration at
  wakeup, affinity masks (the ``sched_setaffinity`` analog),
* :mod:`~repro.machine.machine` — the :class:`SimMachine` facade and
  :class:`SimThread`.
"""

from repro.machine.background import inject_background_load
from repro.machine.cache import CacheHierarchy, SetAssocCache
from repro.machine.cachestate import LlcState, Region
from repro.machine.cost import Traffic, WorkCost, compute_only, streaming
from repro.machine.machine import SimMachine, SimThread
from repro.machine.memory import MemoryController, MemorySystem
from repro.machine.scheduler import Scheduler, SchedulerTrace
from repro.machine.topology import (
    CORE_I7_920,
    MACHINES,
    XEON_E5450_2S,
    XEON_X7560_4S,
    CacheLevel,
    MachineSpec,
    Topology,
)

__all__ = [
    "CORE_I7_920",
    "CacheHierarchy",
    "CacheLevel",
    "LlcState",
    "MACHINES",
    "MachineSpec",
    "MemoryController",
    "MemorySystem",
    "Region",
    "Scheduler",
    "SchedulerTrace",
    "SetAssocCache",
    "SimMachine",
    "SimThread",
    "Topology",
    "Traffic",
    "WorkCost",
    "XEON_E5450_2S",
    "XEON_X7560_4S",
    "compute_only",
    "inject_background_load",
    "streaming",
]
