"""Hardware topology descriptions (hwloc-like).

The paper (§V-C) calls for "a tool or API that aided in deciphering the
core and cache topology of the underlying hardware", citing hwloc.  This
module provides exactly that for the simulated machines: a declarative
:class:`MachineSpec`, an expanded :class:`Topology` with queries
(which PUs share an LLC, which PUs are SMT siblings, NUMA distances),
and an ASCII renderer in the style of ``lstopo``.

The three predefined machines reproduce Table II of the paper:

========================  =========  ====  =====  ======  =================
Machine                   P x C      L1d   L2     L3      Memory
========================  =========  ====  =====  ======  =================
Intel Core i7 920         1 x 4      32kB  256kB  1 x (8MB/4 cores)   6 GB
Intel Xeon E5450 (x2)     2 x 4      32kB  256kB* 4 x (6MB/2 cores)  16 GB
Intel Xeon X7560 (x4)     4 x 8      32kB  256kB  4 x (24MB/8 cores) 192 GB
========================  =========  ====  =====  ======  =================

(*) the paper's Table II lists 256 kB L2 for all three machines; we keep
its numbers verbatim even where real E5450 hardware differed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class CacheLevel:
    """One level of the cache hierarchy.

    ``shared_by`` is the number of *cores* that share one instance of
    this cache (1 = private per core).
    """

    level: int
    size_bytes: int
    line_bytes: int = 64
    associativity: int = 8
    latency_cycles: int = 4
    shared_by: int = 1

    def __post_init__(self):
        if self.size_bytes <= 0 or self.line_bytes <= 0:
            raise ValueError("cache size and line size must be positive")
        if self.size_bytes % self.line_bytes:
            raise ValueError("cache size must be a multiple of line size")
        n_lines = self.size_bytes // self.line_bytes
        if n_lines % self.associativity:
            raise ValueError(
                f"L{self.level}: {n_lines} lines not divisible by "
                f"associativity {self.associativity}"
            )

    @property
    def n_sets(self) -> int:
        return self.size_bytes // self.line_bytes // self.associativity


@dataclass(frozen=True)
class MachineSpec:
    """Declarative description of a test machine.

    ``llc_group_size`` is the number of cores sharing one last-level
    cache; it must divide ``cores_per_socket``.
    """

    name: str
    sockets: int
    cores_per_socket: int
    smt: int  # hardware threads per core (1 = no HyperThreading)
    freq_hz: float  # core clock
    caches: Tuple[CacheLevel, ...]  # ordered L1..LLC
    dram_bytes: int
    #: peak DRAM bandwidth of one socket's memory controller (bytes/s)
    socket_bw: float
    #: max bandwidth a single core can draw (bytes/s)
    core_bw: float
    #: DRAM access latency in ns (local)
    dram_latency_ns: float = 65.0
    #: multiplier for a remote-socket memory access
    remote_penalty: float = 1.7

    def __post_init__(self):
        if self.sockets < 1 or self.cores_per_socket < 1 or self.smt < 1:
            raise ValueError("sockets, cores, smt must be >= 1")
        llc = self.caches[-1]
        if self.cores_per_socket % llc.shared_by:
            raise ValueError(
                f"LLC shared_by={llc.shared_by} does not divide "
                f"cores_per_socket={self.cores_per_socket}"
            )

    @property
    def n_cores(self) -> int:
        return self.sockets * self.cores_per_socket

    @property
    def n_pus(self) -> int:
        """Number of schedulable processing units (virtual processors)."""
        return self.n_cores * self.smt

    @property
    def llc(self) -> CacheLevel:
        return self.caches[-1]

    @property
    def llc_groups_per_socket(self) -> int:
        return self.cores_per_socket // self.llc.shared_by


class Topology:
    """Expanded machine topology with placement queries.

    Numbering follows the common Linux convention: PU ids enumerate
    SMT-sibling sets core by core, socket by socket; PU ``p`` lives on
    core ``p // smt``, and core ``c`` lives on socket
    ``c // cores_per_socket``.
    """

    def __init__(self, spec: MachineSpec):
        self.spec = spec
        smt = spec.smt
        self._core_of_pu = [p // smt for p in range(spec.n_pus)]
        self._socket_of_core = [
            c // spec.cores_per_socket for c in range(spec.n_cores)
        ]
        shared = spec.llc.shared_by
        self._llc_of_core = []
        for c in range(spec.n_cores):
            sock = self._socket_of_core[c]
            within = c - sock * spec.cores_per_socket
            self._llc_of_core.append(
                sock * spec.llc_groups_per_socket + within // shared
            )
        self.n_llc_groups = spec.sockets * spec.llc_groups_per_socket
        # sibling sets are asked for constantly by placement code; build
        # the tables once (queries hand out copies, so callers can't
        # corrupt the shared state)
        self._pus_of_core = [
            tuple(range(c * smt, (c + 1) * smt)) for c in range(spec.n_cores)
        ]
        self._llc_of_pu = [
            self._llc_of_core[self._core_of_pu[p]] for p in range(spec.n_pus)
        ]

    # -- id maps ---------------------------------------------------------

    def pus(self) -> range:
        """All processing-unit (hardware thread) ids."""
        return range(self.spec.n_pus)

    def cores(self) -> range:
        """All physical core ids."""
        return range(self.spec.n_cores)

    def core_of(self, pu: int) -> int:
        """Physical core hosting a PU."""
        return self._core_of_pu[pu]

    def socket_of(self, pu: int) -> int:
        """Socket (processor package) hosting a PU."""
        return self._socket_of_core[self._core_of_pu[pu]]

    def llc_of(self, pu: int) -> int:
        """Id of the last-level-cache group serving this PU."""
        return self._llc_of_pu[pu]

    def pus_of_core(self, core: int) -> List[int]:
        """The SMT sibling PUs of one physical core."""
        return list(self._pus_of_core[core])

    def pus_of_socket(self, socket: int) -> List[int]:
        """Every PU on one socket."""
        return [p for p in self.pus() if self.socket_of(p) == socket]

    def pus_of_llc(self, llc: int) -> List[int]:
        """Every PU served by one last-level-cache group."""
        return [p for p in self.pus() if self.llc_of(p) == llc]

    def smt_siblings(self, pu: int) -> List[int]:
        """All PUs on the same physical core (including ``pu``)."""
        return self.pus_of_core(self.core_of(pu))

    # -- relations ---------------------------------------------------------

    def same_core(self, a: int, b: int) -> bool:
        """True when two PUs are SMT siblings on one core."""
        return self.core_of(a) == self.core_of(b)

    def shares_llc(self, a: int, b: int) -> bool:
        """True when two PUs sit under the same last-level cache."""
        return self.llc_of(a) == self.llc_of(b)

    def same_socket(self, a: int, b: int) -> bool:
        """True when two PUs share a processor package."""
        return self.socket_of(a) == self.socket_of(b)

    def distance(self, a: int, b: int) -> int:
        """Communication distance class between two PUs.

        0 same core, 1 same LLC group, 2 same socket, 3 cross-socket.
        """
        if self.same_core(a, b):
            return 0
        if self.shares_llc(a, b):
            return 1
        if self.same_socket(a, b):
            return 2
        return 3

    # -- affinity mask helpers (Table III topologies) ----------------------

    def mask_all(self) -> frozenset:
        """The unrestricted affinity mask (every PU)."""
        return frozenset(self.pus())

    def mask_one_core_per_socket(self, n: int) -> frozenset:
        """First PU of the first core of each of ``n`` sockets."""
        if n > self.spec.sockets:
            raise ValueError(
                f"requested {n} sockets, machine has {self.spec.sockets}"
            )
        return frozenset(
            self.pus_of_socket(s)[0] for s in range(n)
        )

    def mask_cores_on_one_socket(self, n: int, socket: int = 0) -> frozenset:
        """First PU of each of ``n`` distinct cores on one socket."""
        cores = [
            c
            for c in self.cores()
            if self._socket_of_core[c] == socket
        ][:n]
        if len(cores) < n:
            raise ValueError(
                f"socket {socket} has only {len(cores)} cores, need {n}"
            )
        return frozenset(self.pus_of_core(c)[0] for c in cores)

    def mask_n_cores_per_socket(self, per_socket: int) -> frozenset:
        """First PU of ``per_socket`` cores on every socket."""
        mask = set()
        for s in range(self.spec.sockets):
            cores = [
                c
                for c in self.cores()
                if self._socket_of_core[c] == s
            ][:per_socket]
            if len(cores) < per_socket:
                raise ValueError(
                    f"socket {s} has only {len(cores)} cores, "
                    f"need {per_socket}"
                )
            mask.update(self.pus_of_core(c)[0] for c in cores)
        return frozenset(mask)

    # -- rendering ---------------------------------------------------------

    def render(self) -> str:
        """ASCII rendering in the spirit of ``lstopo`` — the topology
        discovery aid §V-C asks for."""
        spec = self.spec
        out = [
            f"Machine {spec.name} "
            f"({spec.dram_bytes // 2**30} GB, "
            f"{spec.sockets}P x {spec.cores_per_socket}C x {spec.smt}T)"
        ]
        for s in range(spec.sockets):
            out.append(f"  Socket P#{s}")
            seen_llc = []
            for c in self.cores():
                if self._socket_of_core[c] != s:
                    continue
                llc = self._llc_of_core[c]
                if llc not in seen_llc:
                    seen_llc.append(llc)
                    out.append(
                        f"    L{spec.llc.level} "
                        f"({spec.llc.size_bytes // 2**20} MB) #{llc}"
                    )
                pus = ",".join(f"PU#{p}" for p in self.pus_of_core(c))
                out.append(f"      Core #{c}  [{pus}]")
        return "\n".join(out)

    def table2_row(self) -> Dict[str, str]:
        """This machine's row of the paper's Table II."""
        spec = self.spec
        l1, l2, l3 = spec.caches[0], spec.caches[1], spec.caches[2]
        n_llc = self.n_llc_groups
        return {
            "Processor Type": spec.name,
            "Procs x Cores": f"{spec.sockets}x{spec.cores_per_socket}",
            "L1 Data Cache": f"{l1.size_bytes // 1024} kB",
            "L2 Cache": f"{l2.size_bytes // 1024} kB",
            "L3 Cache": (
                f"{n_llc} x ({l3.size_bytes // 2**20} MB shared/"
                f"{l3.shared_by} cores)"
            ),
            "Memory": f"{spec.dram_bytes // 2**30} GB",
        }


def _mb(n: float) -> int:
    return int(n * 2**20)


def _kb(n: float) -> int:
    return int(n * 1024)


#: Table II row 1 — the Fig. 1 machine.
CORE_I7_920 = MachineSpec(
    name="Intel Core i7 920",
    sockets=1,
    cores_per_socket=4,
    smt=2,
    freq_hz=2.66e9,
    caches=(
        CacheLevel(1, _kb(32), latency_cycles=4),
        CacheLevel(2, _kb(256), latency_cycles=11),
        CacheLevel(3, _mb(8), associativity=16, latency_cycles=38, shared_by=4),
    ),
    dram_bytes=6 * 2**30,
    socket_bw=12.5e9,
    core_bw=10e9,
    dram_latency_ns=65.0,
)

#: Table II row 2 — two quad-core Harpertown Xeons, LLC shared per core pair.
XEON_E5450_2S = MachineSpec(
    name="Intel Xeon E5450",
    sockets=2,
    cores_per_socket=4,
    smt=1,
    freq_hz=3.0e9,
    caches=(
        CacheLevel(1, _kb(32), latency_cycles=3),
        CacheLevel(2, _kb(256), latency_cycles=12),
        CacheLevel(3, _mb(6), associativity=24, latency_cycles=40, shared_by=2),
    ),
    dram_bytes=16 * 2**30,
    socket_bw=10e9,
    core_bw=6e9,
    dram_latency_ns=90.0,
    remote_penalty=1.5,
)

#: Table II row 3 — four 8-core Nehalem-EX Xeons, 24 MB LLC per socket.
XEON_X7560_4S = MachineSpec(
    name="Intel Xeon X7560",
    sockets=4,
    cores_per_socket=8,
    smt=2,
    freq_hz=2.26e9,
    caches=(
        CacheLevel(1, _kb(32), latency_cycles=4),
        CacheLevel(2, _kb(256), latency_cycles=11),
        CacheLevel(
            3, _mb(24), associativity=24, latency_cycles=50, shared_by=8
        ),
    ),
    dram_bytes=192 * 2**30,
    socket_bw=20e9,
    core_bw=7e9,
    dram_latency_ns=110.0,
    remote_penalty=1.5,
)

#: All Table II machines by short name.
MACHINES: Dict[str, MachineSpec] = {
    "i7-920": CORE_I7_920,
    "e5450x2": XEON_E5450_2S,
    "x7560x4": XEON_X7560_4S,
}
