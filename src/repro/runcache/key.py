"""Canonical cache keys for deterministic simulated runs.

A :class:`RunSpec` names everything that determines the outcome of one
run — the workload and its step count, thread count, seed, machine
topology, cost-model calibration, fault plan, pinning policy, and the
execution options the replay layer accepts.  :func:`spec_digest` maps a
spec to a content address: the SHA-256 of its canonical JSON encoding
salted with :func:`code_version_salt`, a hash of every ``repro`` source
file.  Because the simulated machine is byte-deterministic (same spec ⇒
same event trace, asserted since PR 1), the digest is a *sound* memo
key: two runs with equal digests produce byte-identical artifacts.

Canonicalization rules (asserted by ``tests/runcache/test_key.py``):

* dict/kwarg ordering never matters (keys are sorted at encode time);
* defaults never matter — ``params=None`` and an explicitly constructed
  default :class:`~repro.core.costmodel.CostParams` encode identically,
  and omitted options are filled from :data:`OPTION_DEFAULTS`;
* any *observable* change — a different field value, fault plan, or a
  single byte of engine/cost-model source — changes the digest.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, fields, is_dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Sequence

from repro.core.costmodel import DEFAULT_COST_PARAMS, CostParams

#: spec kinds the executor knows how to (re-)run
KINDS = (
    "capture", "observe", "trace", "chaos_ref", "chaos_case", "toolerror"
)

#: execution options a spec may carry, with their canonical defaults —
#: an omitted option and an explicitly-passed default hash identically
OPTION_DEFAULTS: Dict[str, Any] = {
    "partition": "block",
    "queue_mode": "single",
    "repeat": 1,
    "fuse_rebuild": True,
    "gc_model": "none",        # "none" | "chaos" (the chaos harness's)
    "phase_timeout_factor": None,
    "trace_steps": None,       # distinct capture length (chaos refs)
    # executor strategy knobs (the autotuner's search space)
    "assign": "owner-index",
    "chunk": "thread",
    "chunk_factor": 1,
    "steal_policy": "locality",
    "steal_cost_cycles": 400.0,
    "pop_overhead_cycles": 150.0,
}

_SALT_CACHE: Dict[str, str] = {}


def code_version_salt() -> str:
    """SHA-256 over every ``repro`` source file (path + contents).

    Any change to the engine, cost model, machine model, DES, or the
    observation layers produces a new salt, invalidating every cached
    entry — staleness is impossible by construction.  Computed once per
    process (the tree is ~200 small files).
    """
    cached = _SALT_CACHE.get("salt")
    if cached is not None:
        return cached
    root = Path(__file__).resolve().parent.parent  # src/repro
    h = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root).as_posix()
        h.update(rel.encode())
        h.update(b"\0")
        h.update(path.read_bytes())
        h.update(b"\0")
    salt = h.hexdigest()
    _SALT_CACHE["salt"] = salt
    return salt


def _canon_value(value):
    """JSON-ready deep copy with tuples as lists and dataclasses as
    (sorted-at-dump-time) dicts; rejects types with ambiguous encodings."""
    if is_dataclass(value) and not isinstance(value, type):
        return {k: _canon_value(v) for k, v in asdict(value).items()}
    if isinstance(value, dict):
        return {str(k): _canon_value(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canon_value(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if hasattr(value, "value") and hasattr(value, "name"):  # enum
        return _canon_value(value.value)
    raise TypeError(f"cannot canonicalize {type(value).__name__}: {value!r}")


def canonical_params(params: Optional[CostParams]) -> Dict[str, Any]:
    """Full field dict of ``params`` (defaults expanded when None)."""
    return _canon_value(params if params is not None else DEFAULT_COST_PARAMS)


def canonical_options(options: Optional[Dict[str, Any]]) -> Dict[str, Any]:
    """``options`` merged over :data:`OPTION_DEFAULTS`.

    Unknown option names are kept (they still determine the run), but a
    queue-mode enum is folded to its string value so
    ``QueueMode.SINGLE`` and ``"single"`` encode identically.
    """
    merged = dict(OPTION_DEFAULTS)
    for k, v in (options or {}).items():
        canon = _canon_value(v)
        # numeric knobs fold to the default's type, so 400 and 400.0
        # (or a future int-typed default passed as a float) encode
        # identically — JSON distinguishes them, the run does not
        default = OPTION_DEFAULTS.get(k)
        if (
            isinstance(default, float)
            and isinstance(canon, int)
            and not isinstance(canon, bool)
        ):
            canon = float(canon)
        elif (
            isinstance(default, int)
            and not isinstance(default, bool)
            and isinstance(canon, float)
            and canon.is_integer()
        ):
            canon = int(canon)
        merged[k] = canon
    return merged


@dataclass(frozen=True)
class RunSpec:
    """Everything that determines one deterministic run's artifacts.

    ``threads``/``machine`` are meaningless for pure physics captures
    (``kind="capture"``) and canonicalize to 0/"" there, so a capture
    requested through different replay paths dedupes to one entry.
    """

    kind: str
    workload: str
    steps: int
    seed: int = 0
    threads: int = 0
    machine: str = ""
    params: Optional[Dict[str, Any]] = None
    fault_plan: Optional[Dict[str, Any]] = None
    #: per-worker PU masks (pinning experiments); None = OS-scheduled
    affinities: Optional[Sequence] = None
    master_affinity: Optional[Sequence] = None
    options: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown spec kind {self.kind!r}; choose from {KINDS}"
            )
        if self.steps < 1:
            raise ValueError(f"steps must be >= 1: {self.steps}")
        if self.kind != "capture" and self.threads < 1:
            raise ValueError(
                f"{self.kind} spec needs threads >= 1: {self.threads}"
            )

    def canonical(self) -> Dict[str, Any]:
        """The JSON-ready dict the digest is computed over.

        Memoized on the (frozen, hence immutable) instance: a sweep
        canonicalizes every spec several times — dedup, store meta,
        journal — and the deep normalization is the expensive part.
        Callers treat the returned dict as read-only.
        """
        cached = getattr(self, "_canonical_cache", None)
        if cached is not None:
            return cached
        is_capture = self.kind == "capture"
        out = {
            "kind": self.kind,
            "workload": self.workload,
            "steps": self.steps,
            "seed": self.seed,
            "threads": 0 if is_capture else self.threads,
            "machine": "" if is_capture else self.machine,
            "params": canonical_params(
                None if self.params is None else _as_params(self.params)
            ),
            "fault_plan": _canon_value(self.fault_plan),
            "affinities": _canon_value(self.affinities),
            "master_affinity": _canon_value(self.master_affinity),
            "options": canonical_options(self.options),
        }
        object.__setattr__(self, "_canonical_cache", out)
        return out

    def encode(self) -> str:
        """Canonical JSON text (sorted keys, no whitespace drift)."""
        return json.dumps(
            self.canonical(), sort_keys=True, separators=(",", ":")
        )

    def label(self) -> str:
        """Short human-readable tag for logs and verify reports."""
        bits = [self.kind, self.workload, f"s{self.steps}"]
        if self.kind != "capture":
            bits.append(f"x{self.threads}")
            if self.machine:
                bits.append(self.machine)
        if self.fault_plan is not None:
            bits.append(self.fault_plan.get("name") or "faulted")
        return ":".join(bits)


def _as_params(d: Dict[str, Any]) -> CostParams:
    """Rebuild a CostParams from a (possibly partial) field dict."""
    known = {f.name for f in fields(CostParams)}
    extra = set(d) - known
    if extra:
        raise ValueError(
            f"unknown CostParams field(s) {sorted(extra)}"
        )
    return CostParams(**d)


def params_to_spec(params: Optional[CostParams]) -> Optional[Dict[str, Any]]:
    """CostParams → the dict form a :class:`RunSpec` carries (None stays
    None; both encode to the same expanded defaults)."""
    if params is None:
        return None
    return _canon_value(params)


def spec_digest(spec: RunSpec, salt: Optional[str] = None) -> str:
    """Content address of a spec: SHA-256(canonical JSON + code salt).

    Memoized per (spec instance, salt): the store digests each spec on
    every lookup, put, and meta write, and the canonical-JSON encode
    dominates the hash itself.
    """
    key = salt if salt is not None else code_version_salt()
    cached = getattr(spec, "_digest_cache", None)
    if cached is not None and cached[0] == key:
        return cached[1]
    h = hashlib.sha256()
    h.update(spec.encode().encode())
    h.update(b"\0")
    h.update(key.encode())
    digest = h.hexdigest()
    object.__setattr__(spec, "_digest_cache", (key, digest))
    return digest
