"""Content-addressed run cache for the deterministic simulated machine.

The simulator's replays are byte-deterministic (same spec ⇒ same event
trace, asserted since PR 1), which makes full-run memoization *exact*:
a :class:`RunSpec` digests everything that determines a run — workload,
steps, seed, threads, machine topology, cost-model calibration, fault
plan, pinning, and a salt over the entire ``repro`` source tree — and
the :class:`RunCache` stores the artifacts consumers need (captured
StepReports, attribution observations, chaos cases, trace bundles)
under that digest with atomic writes and LRU size capping.

:func:`sweep` dedupes a list of specs against the store and executes
the misses across a process pool, so the attribution bench, the chaos
battery, the CLI, and the paper benchmarks all pay for each distinct
simulation exactly once.  ``repro cache stats|clear|verify`` manages
the store from the shell; the sampled ``verify`` re-runs a cached entry
and asserts byte-identity.
"""

from repro.runcache.key import (
    OPTION_DEFAULTS,
    RunSpec,
    code_version_salt,
    spec_digest,
)
from repro.runcache.resilience import (
    JOURNAL_SCHEMA,
    JournalState,
    Quarantined,
    SupervisionPolicy,
    SweepJournal,
    journal_specs,
    load_journal,
    spec_from_canonical,
)
from repro.runcache.store import (
    CacheStats,
    RunCache,
    VerifyReport,
    default_cache_dir,
    dumps_artifact,
)
from repro.runcache.sweep import (
    SweepResult,
    attribute_cached,
    attribution_sweep,
    cached_capture,
    capture_spec,
    default_jobs,
    execute_spec,
    observe_spec,
    run_and_store,
    sweep,
    toolerror_spec,
    trace_spec,
)

__all__ = [
    "CacheStats",
    "JOURNAL_SCHEMA",
    "JournalState",
    "OPTION_DEFAULTS",
    "Quarantined",
    "RunCache",
    "RunSpec",
    "SupervisionPolicy",
    "SweepJournal",
    "SweepResult",
    "VerifyReport",
    "attribute_cached",
    "attribution_sweep",
    "cached_capture",
    "capture_spec",
    "code_version_salt",
    "default_cache_dir",
    "default_jobs",
    "dumps_artifact",
    "execute_spec",
    "journal_specs",
    "load_journal",
    "observe_spec",
    "run_and_store",
    "spec_digest",
    "spec_from_canonical",
    "sweep",
    "toolerror_spec",
    "trace_spec",
]
