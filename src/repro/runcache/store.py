"""The on-disk content-addressed run cache.

Layout (under ``RunCache.root``, default ``~/.cache/repro/runcache`` or
``$REPRO_RUNCACHE_DIR``)::

    objects/<aa>/<digest>.pkl    pickled artifact (the content)
    objects/<aa>/<digest>.json   meta: spec, label, sizes, created
    stats.json                   cumulative hit/miss counters

Guarantees:

* **atomic writes** — artifacts land via ``os.replace`` of a same-dir
  temp file, so readers never observe a partial entry and concurrent
  writers of the same digest are last-writer-wins with identical bytes
  (the digest pins the content);
* **corruption recovery** — an unreadable/truncated entry is treated as
  a miss and deleted, never raised to the caller;
* **write-failure absorption** — a store that cannot be written
  (ENOSPC, permissions, a torn temp file) records the failure
  (``session_put_failures`` + a ``cache.put_failed`` telemetry event)
  and behaves like a miss on the next lookup — a full disk degrades a
  sweep to uncached speed, it never kills it.  Orphaned ``*.tmp``
  files older than an hour (writers that died mid-put) are reaped when
  a handle opens the store;
* **LRU size cap** — ``max_bytes`` (default 512 MiB, or
  ``$REPRO_RUNCACHE_MAX_BYTES``) is enforced after every put by
  evicting least-recently-*used* entries (hits refresh an entry's
  stamp);
* **verify** — a sampled entry is re-executed from its stored spec and
  the fresh pickle is byte-compared against the cached one, which the
  DES's deterministic-replay guarantee makes an exact check.

Wall-clock numbers are never cached: artifacts are simulated-time
results, and the benchmark scripts time only cache *misses*.
"""

from __future__ import annotations

import io
import json
import os
import pickle
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.runcache.key import RunSpec, code_version_salt, spec_digest
from repro.telemetry import runtime as telemetry_runtime
from repro.telemetry.schema import CACHE_STATS_SCHEMA

#: pinned so one store never mixes pickle encodings across interpreters
PICKLE_PROTOCOL = 4

DEFAULT_MAX_BYTES = 512 * 2**20

#: age past which a leftover ``.tmp`` file is an orphan, not a
#: concurrent writer's live temp file
ORPHAN_TMP_MAX_AGE = 3600.0

_ENV_DIR = "REPRO_RUNCACHE_DIR"
_ENV_MAX = "REPRO_RUNCACHE_MAX_BYTES"


def default_cache_dir() -> Path:
    """``$REPRO_RUNCACHE_DIR`` or ``~/.cache/repro/runcache``."""
    env = os.environ.get(_ENV_DIR)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "runcache"


def dumps_artifact(artifact: Any) -> bytes:
    """Canonical byte encoding of an artifact (the verify currency)."""
    buf = io.BytesIO()
    pickle.Pickler(buf, protocol=PICKLE_PROTOCOL).dump(artifact)
    return buf.getvalue()


@dataclass
class VerifyReport:
    """Outcome of re-running one cached entry."""

    digest: str
    label: str
    ok: bool
    detail: str = ""


@dataclass
class CacheStats:
    """Snapshot of a store's state (the ``repro cache stats`` payload)."""

    root: str
    entries: int
    total_bytes: int
    max_bytes: int
    hits: int
    misses: int
    salt: str
    by_kind: Dict[str, int] = field(default_factory=dict)
    put_failures: int = 0

    @property
    def hit_rate(self) -> float:
        seen = self.hits + self.misses
        return self.hits / seen if seen else 0.0

    def to_dict(self) -> dict:
        return {
            "schema": CACHE_STATS_SCHEMA,
            "root": self.root,
            "entries": self.entries,
            "total_bytes": self.total_bytes,
            "max_bytes": self.max_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "salt": self.salt,
            "by_kind": dict(self.by_kind),
            "put_failures": self.put_failures,
        }

    def render(self) -> str:
        lines = [
            f"run cache at {self.root}",
            f"  entries     {self.entries} "
            f"({self.total_bytes / 2**20:.2f} MiB of "
            f"{self.max_bytes / 2**20:.0f} MiB cap)",
            f"  lookups     {self.hits} hits / {self.misses} misses "
            f"(hit rate {self.hit_rate * 100:.1f}%)",
            f"  code salt   {self.salt[:16]}…",
        ]
        if self.put_failures:
            lines.insert(
                3, f"  put failures {self.put_failures} (stored as misses)"
            )
        for kind in sorted(self.by_kind):
            lines.append(f"    {kind:<11} {self.by_kind[kind]} entries")
        return "\n".join(lines)


class RunCache:
    """Content-addressed store of deterministic run artifacts."""

    def __init__(
        self,
        root: Optional[os.PathLike] = None,
        max_bytes: Optional[int] = None,
    ):
        self.root = Path(root) if root is not None else default_cache_dir()
        if max_bytes is None:
            env = os.environ.get(_ENV_MAX)
            max_bytes = int(env) if env else DEFAULT_MAX_BYTES
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1: {max_bytes}")
        self.max_bytes = max_bytes
        self._salt = code_version_salt()
        #: lookups made through *this* handle (session counters; the
        #: cumulative ones live in stats.json)
        self.session_hits = 0
        self.session_misses = 0
        #: stores that failed (ENOSPC, permissions) and were absorbed
        self.session_put_failures = 0
        #: running estimate of stored artifact bytes; None until the
        #: first put scans the directory once.  Keeping it incremental
        #: makes put O(1) instead of O(entries) — the full rescan only
        #: happens when the estimate crosses the cap (see
        #: :meth:`_enforce_cap`, which resyncs it).
        self._approx_bytes: Optional[int] = None
        self.reap_orphans()

    # -- paths -----------------------------------------------------------

    def _objects(self) -> Path:
        return self.root / "objects"

    def _paths(self, digest: str) -> tuple:
        shard = self._objects() / digest[:2]
        return shard / f"{digest}.pkl", shard / f"{digest}.json"

    def digest(self, spec: RunSpec) -> str:
        return spec_digest(spec, self._salt)

    # -- lookups ---------------------------------------------------------

    def _read(self, spec: RunSpec) -> Optional[bytes]:
        """Uncounted lookup: artifact bytes or None.

        A corrupted or half-written entry (short file, bad meta) is
        deleted and reported as a miss; a sound entry gets its LRU
        stamp refreshed.
        """
        digest = self.digest(spec)
        pkl, meta = self._paths(digest)
        try:
            data = pkl.read_bytes()
            expected = json.loads(meta.read_text()).get("artifact_bytes")
        except (OSError, ValueError):
            self._drop(digest)
            return None
        if expected is not None and expected != len(data):
            self._drop(digest)
            return None
        now = time.time()
        try:
            os.utime(pkl, (now, now))  # LRU stamp
        except OSError:
            pass
        return data

    def get_bytes(self, spec: RunSpec) -> Optional[bytes]:
        """Raw artifact bytes for a spec, or None on miss."""
        data = self._read(spec)
        self._count(hit=data is not None)
        self._observe_lookup(spec, hit=data is not None)
        return data

    def get(self, spec: RunSpec) -> Optional[Any]:
        """Unpickled artifact for a spec, or None on miss/corruption."""
        data = self._read(spec)
        artifact = None
        if data is not None:
            try:
                artifact = pickle.loads(data)
            except Exception:
                self._drop(self.digest(spec))
        self._count(hit=artifact is not None)
        self._observe_lookup(spec, hit=artifact is not None)
        return artifact

    def _observe_lookup(self, spec: RunSpec, hit: bool) -> None:
        telemetry_runtime.current().event(
            "cache.lookup",
            hit=hit,
            kind=spec.kind,
            digest=self.digest(spec)[:12],
        )

    def contains(self, spec: RunSpec) -> bool:
        pkl, _meta = self._paths(self.digest(spec))
        return pkl.exists()

    # -- writes ----------------------------------------------------------

    def put_bytes(self, spec: RunSpec, data: bytes) -> str:
        """Store pre-pickled artifact bytes; returns the digest.

        A failed write (ENOSPC, permissions, a disk pulled mid-put) is
        *absorbed*: the half-written entry is dropped, the failure is
        counted and emitted as a ``cache.put_failed`` event, and the
        digest is still returned — the entry simply stays a miss.  The
        sweep's correctness never depends on a put landing.
        """
        digest = self.digest(spec)
        pkl, meta = self._paths(digest)
        # meta records the *intended* length: a torn artifact write
        # (shorter file) is caught by the read-side length check
        meta_doc = {
            "digest": digest,
            "label": spec.label(),
            "spec": spec.canonical(),
            "artifact_bytes": len(data),
            "salt": self._salt,
            "created": time.time(),
        }
        try:
            if "REPRO_PROCESS_FAULTS" in os.environ:  # chaos harness
                from repro.faults import process as process_faults

                data = process_faults.corrupt_put(spec.kind, data)
            pkl.parent.mkdir(parents=True, exist_ok=True)
            self._atomic_write(pkl, data)
            self._atomic_write(
                meta, (json.dumps(meta_doc, indent=1) + "\n").encode()
            )
        except OSError as exc:
            self.session_put_failures += 1
            self._drop(digest)  # never leave a half pair behind
            self._count_put_failure()
            telemetry_runtime.current().event(
                "cache.put_failed",
                kind=spec.kind,
                digest=digest[:12],
                bytes=len(data),
                error=f"{type(exc).__name__}: {exc}"[:200],
            )
            return digest
        telemetry_runtime.current().event(
            "cache.put",
            kind=spec.kind,
            digest=digest[:12],
            bytes=len(data),
        )
        if self._approx_bytes is None:
            # first put through this handle: one directory scan, which
            # already includes the entry just written
            self._approx_bytes = sum(
                e["bytes"] for e in self._entries()
            )
        else:
            self._approx_bytes += len(data)
        if self._approx_bytes > self.max_bytes:
            self._enforce_cap()
        return digest

    def put(self, spec: RunSpec, artifact: Any) -> str:
        return self.put_bytes(spec, dumps_artifact(artifact))

    def _atomic_write(self, path: Path, data: bytes) -> None:
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _drop(self, digest: str) -> None:
        pkl, meta = self._paths(digest)
        if self._approx_bytes is not None:
            try:
                self._approx_bytes -= pkl.stat().st_size
            except OSError:
                pass
        for path in (pkl, meta):
            try:
                os.unlink(path)
            except OSError:
                pass

    # -- maintenance -----------------------------------------------------

    def reap_orphans(
        self, max_age: float = ORPHAN_TMP_MAX_AGE
    ) -> int:
        """Delete ``*.tmp`` files left by writers that died mid-put.

        Only files older than ``max_age`` seconds go — younger ones
        may belong to a live concurrent writer.  Runs on every store
        open, so a crashed sweep never leaks temp files forever.
        """
        objects = self._objects()
        if not objects.is_dir():
            return 0
        cutoff = time.time() - max_age
        reaped = 0
        for tmp in objects.glob("*/*.tmp"):
            try:
                if tmp.stat().st_mtime <= cutoff:
                    os.unlink(tmp)
                    reaped += 1
            except OSError:
                continue
        if reaped:
            telemetry_runtime.current().event(
                "cache.orphans_reaped", count=reaped
            )
        return reaped

    def _entries(self) -> List[dict]:
        """All live entries: digest, size, LRU stamp, kind."""
        out = []
        objects = self._objects()
        if not objects.is_dir():
            return out
        for pkl in objects.glob("*/*.pkl"):
            try:
                st = pkl.stat()
            except OSError:
                continue
            kind = ""
            try:
                kind = json.loads(
                    pkl.with_suffix(".json").read_text()
                )["spec"]["kind"]
            except (OSError, ValueError, KeyError, TypeError):
                pass
            out.append(
                {
                    "digest": pkl.stem,
                    "bytes": st.st_size,
                    "used": st.st_mtime,
                    "kind": kind,
                }
            )
        return out

    def _enforce_cap(self) -> int:
        """Evict least-recently-used entries above the size cap.

        The full directory scan lives here (and only here): routine
        puts keep an incremental byte total and call this just when
        that estimate crosses the cap.  Concurrent writers to the same
        directory are invisible to the estimate until the next scan —
        the cap was always best-effort across processes — so the scan
        also resyncs the estimate to ground truth.
        """
        entries = self._entries()
        total = sum(e["bytes"] for e in entries)
        evicted = 0
        for entry in sorted(entries, key=lambda e: e["used"]):
            if total <= self.max_bytes:
                break
            self._drop(entry["digest"])
            telemetry_runtime.current().event(
                "cache.evict",
                digest=entry["digest"][:12],
                bytes=entry["bytes"],
                kind=entry["kind"],
            )
            total -= entry["bytes"]
            evicted += 1
        self._approx_bytes = total
        return evicted

    def clear(self) -> int:
        """Delete every entry (and the counters); returns entries removed."""
        entries = self._entries()
        for entry in entries:
            self._drop(entry["digest"])
        self._approx_bytes = 0
        for leftover in (self.root / "stats.json",):
            try:
                os.unlink(leftover)
            except OSError:
                pass
        # remove now-empty shard dirs, best effort
        objects = self._objects()
        if objects.is_dir():
            for shard in objects.iterdir():
                try:
                    shard.rmdir()
                except OSError:
                    pass
        return len(entries)

    # -- counters --------------------------------------------------------

    def _count(self, hit: bool) -> None:
        if hit:
            self.session_hits += 1
        else:
            self.session_misses += 1
        # cumulative counters: best-effort read-modify-replace (lost
        # updates under contention are acceptable for a diagnostic)
        path = self.root / "stats.json"
        try:
            doc = json.loads(path.read_text())
        except (OSError, ValueError):
            doc = {}
        doc["hits"] = int(doc.get("hits", 0)) + (1 if hit else 0)
        doc["misses"] = int(doc.get("misses", 0)) + (0 if hit else 1)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            self._atomic_write(
                path, (json.dumps(doc) + "\n").encode()
            )
        except OSError:
            pass

    def _count_put_failure(self) -> None:
        path = self.root / "stats.json"
        try:
            doc = json.loads(path.read_text())
        except (OSError, ValueError):
            doc = {}
        doc["put_failures"] = int(doc.get("put_failures", 0)) + 1
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            self._atomic_write(path, (json.dumps(doc) + "\n").encode())
        except OSError:  # the disk is the thing that's broken
            pass

    def stats(self) -> CacheStats:
        entries = self._entries()
        by_kind: Dict[str, int] = {}
        for e in entries:
            by_kind[e["kind"] or "?"] = by_kind.get(e["kind"] or "?", 0) + 1
        try:
            doc = json.loads((self.root / "stats.json").read_text())
        except (OSError, ValueError):
            doc = {}
        return CacheStats(
            root=str(self.root),
            entries=len(entries),
            total_bytes=sum(e["bytes"] for e in entries),
            max_bytes=self.max_bytes,
            hits=int(doc.get("hits", 0)),
            misses=int(doc.get("misses", 0)),
            salt=self._salt,
            by_kind=by_kind,
            put_failures=int(doc.get("put_failures", 0)),
        )

    # -- verification ----------------------------------------------------

    def verify(
        self, sample: int = 1, seed: int = 0
    ) -> List[VerifyReport]:
        """Re-run up to ``sample`` cached entries and byte-compare.

        Entries are chosen deterministically from ``seed`` over the
        sorted digest list.  Each report says whether the fresh
        artifact's pickle bytes equal the cached ones; a mismatch is a
        determinism (or corruption) bug, never an expected state.
        """
        import random

        from repro.runcache.resilience import spec_from_canonical
        from repro.runcache.sweep import execute_spec

        entries = sorted(self._entries(), key=lambda e: e["digest"])
        if not entries:
            return []
        rng = random.Random(seed)
        chosen = rng.sample(entries, min(sample, len(entries)))
        reports: List[VerifyReport] = []
        for entry in chosen:
            pkl, meta = self._paths(entry["digest"])
            try:
                cached = pkl.read_bytes()
                spec = spec_from_canonical(
                    json.loads(meta.read_text())["spec"]
                )
            except (OSError, ValueError, KeyError, TypeError) as exc:
                reports.append(
                    VerifyReport(
                        entry["digest"], "?", False,
                        f"unreadable entry: {exc}",
                    )
                )
                continue
            fresh = dumps_artifact(execute_spec(spec, cache=self))
            ok = fresh == cached
            telemetry_runtime.current().event(
                "cache.verify",
                digest=entry["digest"][:12],
                ok=ok,
                label=spec.label(),
            )
            reports.append(
                VerifyReport(
                    entry["digest"],
                    spec.label(),
                    ok,
                    "byte-identical" if ok else (
                        f"MISMATCH: fresh {len(fresh)} bytes vs "
                        f"cached {len(cached)}"
                    ),
                )
            )
        return reports
