"""Crash-safe sweep execution: journal, supervision, degradation.

Three pieces turn :func:`repro.runcache.sweep` from fail-open into
crash-safe:

* :class:`SweepJournal` — a per-sweep append-only JSONL journal
  (``repro.sweepjournal/1``, one ``O_APPEND`` ``os.write`` per record,
  the :mod:`repro.telemetry` idiom) recording every spec's submission,
  start, finish, failure, and quarantine.  ``sweep(..., resume=dir)``
  replays it: digests journaled *finished* and still present in the
  cache are served without re-execution, so an interrupted campaign
  re-runs only its tail.  A torn final line (the writer died mid-
  record) is skipped, never fatal.

* :class:`SupervisionPolicy` — per-spec wall-clock timeouts, bounded
  retries with decorrelated-jitter exponential backoff, and permanent-
  failure quarantine: a poisoned spec is reported in
  :attr:`SweepResult.quarantined` instead of being retried forever or
  killing the sweep.

* graceful degradation — each pool break (worker SIGKILL, timeout
  kill) shrinks the pool by half and restarts it; past
  ``pool_restart_limit`` the remaining misses run supervised in-process
  serially.  The sweep *completes* unless the caller asked for
  propagate semantics.

Worker deaths are infrastructure failures: they are always retried
(or degraded to serial), never quarantined — only exceptions raised by
the spec's own execution can poison it.
"""

from __future__ import annotations

import json
import os
import random
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.runcache.key import RunSpec

JOURNAL_SCHEMA = "repro.sweepjournal/1"
JOURNAL_NAME = "sweep-journal.jsonl"

#: journal record kinds, in lifecycle order
JOURNAL_KINDS = (
    "begin", "submitted", "started", "finished", "failed",
    "quarantined", "end",
)


# -- the journal -------------------------------------------------------------


class SweepJournal:
    """Append-only JSONL journal of one sweep's execution lifecycle.

    Every process of the sweep (parent and pool workers) appends to
    the *same* file with one ``os.write`` to an ``O_APPEND``
    descriptor per record, so records are never torn by concurrency —
    only by the writer itself dying mid-``write``, which the loader
    tolerates by skipping undecodable lines.
    """

    def __init__(self, root: os.PathLike):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.path = self.root / JOURNAL_NAME
        self._fd: Optional[int] = os.open(
            self.path, os.O_APPEND | os.O_CREAT | os.O_WRONLY, 0o644
        )
        self._lock = threading.Lock()

    active = True

    def _write(self, kind: str, **fields_) -> None:
        record = {
            "schema": JOURNAL_SCHEMA,
            "kind": kind,
            "ts": time.time(),
            "pid": os.getpid(),
        }
        record.update(fields_)
        line = json.dumps(record, separators=(",", ":")) + "\n"
        with self._lock:
            if self._fd is None:
                return
            os.write(self._fd, line.encode("utf-8"))

    def begin(self, entries: List[dict], *, jobs: int, resumed: bool):
        """``entries``: ``[{digest, label, spec}]`` with canonical spec
        dicts, which is what lets ``--resume`` rebuild the spec list."""
        self._write("begin", entries=entries, jobs=jobs, resumed=resumed)

    def submitted(self, digest: str, *, label: str, attempt: int):
        self._write("submitted", digest=digest, label=label, attempt=attempt)

    def started(self, digest: str, *, attempt: int):
        self._write("started", digest=digest, attempt=attempt)

    def finished(self, digest: str, *, attempt: int):
        self._write("finished", digest=digest, attempt=attempt)

    def failed(
        self, digest: str, *, attempt: int, error: str, retryable: bool
    ):
        self._write(
            "failed", digest=digest, attempt=attempt,
            error=error[:500], retryable=retryable,
        )

    def quarantined(
        self, digest: str, *, label: str, attempts: int, error: str
    ):
        self._write(
            "quarantined", digest=digest, label=label,
            attempts=attempts, error=error[:500],
        )

    def end(self, *, executed: int, quarantined: int, resumed: int):
        self._write(
            "end", executed=executed, quarantined=quarantined,
            resumed=resumed,
        )

    def close(self) -> None:
        with self._lock:
            if self._fd is not None:
                os.close(self._fd)
                self._fd = None


class NullJournal:
    """Journal sink for unjournaled sweeps: every call is a no-op."""

    root = None
    path = None
    active = False

    def begin(self, entries, *, jobs, resumed):
        pass

    def submitted(self, digest, *, label, attempt):
        pass

    def started(self, digest, *, attempt):
        pass

    def finished(self, digest, *, attempt):
        pass

    def failed(self, digest, *, attempt, error, retryable):
        pass

    def quarantined(self, digest, *, label, attempts, error):
        pass

    def end(self, *, executed, quarantined, resumed):
        pass

    def close(self):
        pass


NULL_JOURNAL = NullJournal()


@dataclass
class JournalState:
    """What a journal says happened (the ``--resume`` input)."""

    #: spec entries of the most recent ``begin`` record
    entries: List[dict] = field(default_factory=list)
    #: digests with a ``finished`` record
    completed: Set[str] = field(default_factory=set)
    #: digest -> latest ``quarantined`` record
    quarantined: Dict[str, dict] = field(default_factory=dict)
    #: digest -> number of ``started`` records (re-execution counter)
    started: Dict[str, int] = field(default_factory=dict)
    #: undecodable lines skipped by the loader (torn final write)
    skipped: int = 0
    records: List[dict] = field(default_factory=list)


def load_journal(root: os.PathLike) -> Optional[JournalState]:
    """Parse a sweep journal, tolerating a torn trailing line.

    Returns None when the directory has no journal file.  A digest
    that was quarantined and *later* finished counts as completed.
    """
    path = Path(root) / JOURNAL_NAME
    try:
        raw = path.read_bytes()
    except OSError:
        return None
    state = JournalState()
    for line in raw.decode("utf-8", errors="replace").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
            kind = record["kind"]
        except (ValueError, KeyError, TypeError):
            state.skipped += 1
            continue
        state.records.append(record)
        if kind == "begin":
            state.entries = list(record.get("entries") or [])
        elif kind == "started":
            digest = record.get("digest", "")
            state.started[digest] = state.started.get(digest, 0) + 1
        elif kind == "finished":
            digest = record.get("digest", "")
            state.completed.add(digest)
            state.quarantined.pop(digest, None)
        elif kind == "quarantined":
            digest = record.get("digest", "")
            if digest not in state.completed:
                state.quarantined[digest] = record
    return state


def spec_from_canonical(doc: Dict[str, Any]) -> RunSpec:
    """Rebuild a :class:`RunSpec` from its canonical dict (the form
    journals and cache meta files store)."""
    return RunSpec(
        kind=doc["kind"],
        workload=doc["workload"],
        steps=doc["steps"],
        seed=doc["seed"],
        threads=doc["threads"],
        machine=doc["machine"],
        params=doc["params"],
        fault_plan=doc["fault_plan"],
        affinities=doc["affinities"],
        master_affinity=doc["master_affinity"],
        options=doc["options"],
    )


def journal_specs(state: JournalState) -> List[RunSpec]:
    """The sweep's spec list, rebuilt from the ``begin`` entries."""
    return [spec_from_canonical(e["spec"]) for e in state.entries]


# -- supervision -------------------------------------------------------------


@dataclass(frozen=True)
class SupervisionPolicy:
    """How hard the sweep fights before giving up on a spec."""

    #: total tries per spec (1 = no retry)
    max_attempts: int = 3
    #: per-attempt wall-clock limit in seconds; None = unlimited
    timeout: Optional[float] = None
    #: decorrelated-jitter backoff: sleep ~ U(base, 3*prev), capped
    base_backoff: float = 0.05
    max_backoff: float = 2.0
    backoff_seed: int = 0
    #: pool rebuilds (each halving the worker count) before the
    #: remaining misses degrade to supervised in-process serial
    pool_restart_limit: int = 3
    #: True: exhausted/poisoned specs land in SweepResult.quarantined;
    #: False: the final error propagates (the historical semantics)
    quarantine: bool = True
    #: on resume, re-attempt previously quarantined digests
    retry_quarantined: bool = False
    #: injection point for tests; production is time.sleep
    sleep: Callable[[float], None] = field(
        default=time.sleep, repr=False, compare=False
    )


#: the policy plain ``sweep()`` calls get: exactly the historical
#: behavior — no retries, first execution error propagates
PROPAGATE_POLICY = SupervisionPolicy(max_attempts=1, quarantine=False)


def retryable(exc: BaseException) -> bool:
    """Poisoned specs never retry; everything else may."""
    try:
        from repro.faults.process import retryable as _retryable

        return _retryable(exc)
    except ImportError:  # pragma: no cover
        return True


class Backoff:
    """Decorrelated-jitter exponential backoff (seeded, so chaos runs
    sleep the same schedule every time)."""

    def __init__(self, policy: SupervisionPolicy):
        self._rng = random.Random(policy.backoff_seed)
        self._base = max(policy.base_backoff, 0.0)
        self._cap = max(policy.max_backoff, self._base)
        self._prev = self._base

    def next(self) -> float:
        self._prev = min(
            self._cap,
            self._rng.uniform(self._base, max(self._prev * 3, self._base)),
        )
        return self._prev


@dataclass
class Quarantined:
    """One spec the sweep gave up on (reported, not retried forever)."""

    digest: str
    label: str
    attempts: int
    error: str
    #: True when carried forward from a previous (resumed) run
    carried: bool = False

    def to_dict(self) -> dict:
        return {
            "digest": self.digest,
            "label": self.label,
            "attempts": self.attempts,
            "error": self.error,
            "carried": self.carried,
        }


@dataclass
class SupervisionStats:
    """Counters the supervised executors fold into the SweepResult."""

    retries: int = 0
    timeouts: int = 0
    pool_restarts: int = 0
    degraded: bool = False


# -- supervised executors ----------------------------------------------------


def _error_text(exc: BaseException) -> str:
    return f"{type(exc).__name__}: {exc}"


def run_serial_supervised(
    misses: List[Tuple[str, RunSpec]],
    cache,
    *,
    policy: SupervisionPolicy,
    journal,
    stats: SupervisionStats,
    artifacts: Dict[str, Any],
    executed: List[str],
    quarantined: List[Quarantined],
    emitter,
    sweep_id: Optional[str] = None,
) -> Dict[str, Dict[str, int]]:
    """Execute misses in-process under supervision (the serial path and
    the post-degradation fallback).  Emits the same per-spec ``shard``
    spans as pool workers; returns this process's cache hit/miss delta
    keyed by pid, shaped like :attr:`SweepResult.worker_cache`."""
    from repro.runcache.sweep import execute_spec, run_and_store

    backoff = Backoff(policy)
    hits0 = cache.session_hits if cache is not None else 0
    misses0 = cache.session_misses if cache is not None else 0
    for key, spec in misses:
        if key in artifacts:
            continue
        attempts = 0
        while True:
            attempts += 1
            journal.submitted(key, label=spec.label(), attempt=attempts)
            journal.started(key, attempt=attempts)
            try:
                with emitter.span(
                    "shard", label=spec.label(), kind=spec.kind,
                    sweep=sweep_id, serial=True, attempt=attempts,
                ):
                    if cache is None:
                        artifact = execute_spec(spec)
                    else:
                        artifact, _ = run_and_store(cache, spec)
            except Exception as exc:
                message = _error_text(exc)
                can_retry = retryable(exc)
                journal.failed(
                    key, attempt=attempts, error=message,
                    retryable=can_retry,
                )
                if can_retry and attempts < policy.max_attempts:
                    stats.retries += 1
                    emitter.event(
                        "sweep.retry", digest=key[:12],
                        label=spec.label(), attempt=attempts,
                        error=message[:200],
                    )
                    policy.sleep(backoff.next())
                    continue
                if policy.quarantine:
                    _quarantine(
                        key, spec, attempts, message,
                        journal, quarantined, emitter,
                    )
                    break
                raise
            else:
                artifacts[key] = artifact
                executed.append(key)
                journal.finished(key, attempt=attempts)
                break
    if cache is None:
        return {}
    delta_h = cache.session_hits - hits0
    delta_m = cache.session_misses - misses0
    if delta_h == 0 and delta_m == 0:
        return {}
    return {str(os.getpid()): {"hits": delta_h, "misses": delta_m}}


def _quarantine(
    key: str,
    spec: RunSpec,
    attempts: int,
    error: str,
    journal,
    quarantined: List[Quarantined],
    emitter,
) -> None:
    record = Quarantined(
        digest=key, label=spec.label(), attempts=attempts, error=error
    )
    quarantined.append(record)
    journal.quarantined(
        key, label=record.label, attempts=attempts, error=error
    )
    emitter.event(
        "sweep.quarantine", digest=key[:12], label=record.label,
        attempts=attempts, error=error[:200],
    )


def _kill_pool_processes(pool) -> None:
    """SIGKILL every live worker of a ProcessPoolExecutor (the only way
    to interrupt a hung task; the pool is rebuilt afterwards)."""
    import signal

    processes = getattr(pool, "_processes", None) or {}
    for proc in list(processes.values()):
        try:
            os.kill(proc.pid, signal.SIGKILL)
        except (OSError, AttributeError):
            pass


def run_pool_supervised(
    misses: List[Tuple[str, RunSpec]],
    cache,
    jobs: int,
    *,
    tel_root: str,
    sweep_id: str,
    policy: SupervisionPolicy,
    journal,
    stats: SupervisionStats,
    artifacts: Dict[str, Any],
    executed: List[str],
    quarantined: List[Quarantined],
    emitter,
) -> Optional[bool]:
    """Fan misses over a supervised ProcessPoolExecutor.

    Returns True when the pool executed (possibly degrading to serial
    for a tail of misses after repeated pool breaks), or None when a
    pool could not be created at all (the caller runs the serial path).
    Artifacts are *not* loaded here — the caller reloads them from the
    cache, which also covers workers that published before dying.
    """
    try:
        from concurrent.futures import (
            FIRST_COMPLETED,
            ProcessPoolExecutor,
            wait,
        )
        from concurrent.futures.process import BrokenProcessPool
    except ImportError:  # pragma: no cover - stdlib always has it
        return None
    from repro.runcache.sweep import _pool_worker

    state: Dict[str, dict] = {
        key: {"spec": spec, "attempts": 0, "done": False}
        for key, spec in misses
    }
    backoff = Backoff(policy)
    workers = min(jobs, len(misses))
    restarts = 0

    try:
        pool = ProcessPoolExecutor(max_workers=workers)
    except (OSError, PermissionError, ValueError):
        return None

    pending: Dict[Any, str] = {}
    deadlines: Dict[Any, float] = {}
    timed_out: Set[Any] = set()

    def submit(key: str) -> bool:
        """Submit one attempt; False when the pool refused (it broke
        or shut down underneath us) — the key stays unsubmitted and is
        either resubmitted after the restart or executed serially as
        leftover."""
        info = state[key]
        spec = info["spec"]
        attempt = info["attempts"] + 1
        payload = (
            spec, str(cache.root), cache.max_bytes, tel_root, sweep_id,
            str(journal.root) if journal.active else None,
            attempt,
        )
        try:
            fut = pool.submit(_pool_worker, payload)
        except Exception:  # BrokenProcessPool / shut-down RuntimeError
            return False
        info["attempts"] = attempt
        journal.submitted(key, label=spec.label(), attempt=attempt)
        pending[fut] = key
        if policy.timeout is not None:
            deadlines[fut] = time.monotonic() + policy.timeout
        return True

    def record_death(key: str, message: str) -> bool:
        """Journal a worker death; True when the key should resubmit.
        Deaths never quarantine: past max attempts the key joins the
        degraded-serial leftover instead."""
        info = state[key]
        journal.failed(
            key, attempt=info["attempts"], error=message, retryable=True
        )
        if info["attempts"] >= policy.max_attempts:
            return False
        stats.retries += 1
        emitter.event(
            "sweep.retry", digest=key[:12],
            label=info["spec"].label(), attempt=info["attempts"],
            error=message[:200],
        )
        return True

    try:
        for key in state:
            submit(key)
        while pending:
            timeout = None
            if deadlines:
                timeout = max(
                    0.0, min(deadlines.values()) - time.monotonic()
                )
            done, _ = wait(
                set(pending), timeout=timeout,
                return_when=FIRST_COMPLETED,
            )
            if not done:
                now = time.monotonic()
                expired = [
                    fut for fut, dl in deadlines.items()
                    if fut in pending and now >= dl
                ]
                if not expired:
                    continue
                # a running future cannot be cancelled: kill the
                # workers, let the broken pool surface on the next wait
                # (dropping the deadline so one hang counts one timeout)
                for fut in expired:
                    key = pending[fut]
                    deadlines.pop(fut, None)
                    stats.timeouts += 1
                    timed_out.add(fut)
                    emitter.event(
                        "sweep.timeout", digest=key[:12],
                        label=state[key]["spec"].label(),
                        attempt=state[key]["attempts"],
                        timeout=policy.timeout,
                    )
                _kill_pool_processes(pool)
                continue
            broken = False
            resubmit: List[str] = []
            for fut in done:
                key = pending.pop(fut)
                deadlines.pop(fut, None)
                info = state[key]
                try:
                    fut.result()
                except BrokenProcessPool:
                    broken = True
                    message = (
                        f"timeout after {policy.timeout}s (worker killed)"
                        if fut in timed_out
                        else "worker process died before completing"
                    )
                    if record_death(key, message):
                        resubmit.append(key)
                except Exception as exc:
                    message = _error_text(exc)
                    can_retry = retryable(exc)
                    journal.failed(
                        key, attempt=info["attempts"], error=message,
                        retryable=can_retry,
                    )
                    if can_retry and info["attempts"] < policy.max_attempts:
                        stats.retries += 1
                        emitter.event(
                            "sweep.retry", digest=key[:12],
                            label=info["spec"].label(),
                            attempt=info["attempts"],
                            error=message[:200],
                        )
                        policy.sleep(backoff.next())
                        if broken or not submit(key):
                            resubmit.append(key)
                    elif policy.quarantine:
                        info["done"] = True
                        _quarantine(
                            key, info["spec"], info["attempts"],
                            message, journal, quarantined, emitter,
                        )
                    else:
                        raise
                else:
                    info["done"] = True
                    journal.finished(key, attempt=info["attempts"])
            if broken:
                # every sibling future of a broken pool is doomed —
                # drain them now and rebuild smaller
                for fut in list(pending):
                    key = pending.pop(fut)
                    deadlines.pop(fut, None)
                    message = (
                        f"timeout after {policy.timeout}s (worker killed)"
                        if fut in timed_out
                        else "pool broke while pending"
                    )
                    if record_death(key, message):
                        resubmit.append(key)
                timed_out.clear()
                try:
                    pool.shutdown(wait=False, cancel_futures=True)
                except Exception:
                    pass
                restarts += 1
                stats.pool_restarts += 1
                workers = max(1, workers // 2)
                emitter.event(
                    "sweep.pool_restart", restarts=restarts,
                    workers=workers,
                )
                if restarts > policy.pool_restart_limit:
                    break
                policy.sleep(backoff.next())
                try:
                    pool = ProcessPoolExecutor(max_workers=workers)
                except (OSError, PermissionError, ValueError):
                    break
                for key in resubmit:
                    submit(key)
            elif resubmit:
                # the pool refused a retry without a visible break
                # (it broke under a submit); failures stay unsubmitted
                # and run serially as leftover
                for key in resubmit:
                    submit(key)
    finally:
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass

    leftover = [
        (key, state[key]["spec"])
        for key, _spec in misses
        if not state[key]["done"] and key not in artifacts
    ]
    # a worker may have published to the cache before its pool broke —
    # don't re-run those serially
    still_missing = []
    for key, spec in leftover:
        artifact = cache.get(spec)
        if artifact is not None:
            artifacts[key] = artifact
            executed.append(key)
            journal.finished(key, attempt=state[key]["attempts"])
            state[key]["done"] = True
        else:
            still_missing.append((key, spec))
    if still_missing:
        stats.degraded = True
        emitter.event(
            "sweep.degraded", remaining=len(still_missing),
            restarts=restarts,
        )
        run_serial_supervised(
            still_missing, cache,
            policy=policy, journal=journal, stats=stats,
            artifacts=artifacts, executed=executed,
            quarantined=quarantined, emitter=emitter,
            sweep_id=sweep_id,
        )
    return True
