"""Executing run specs — serially, through the cache, or across a pool.

:func:`execute_spec` is the single place a :class:`RunSpec` is turned
back into a live simulation; :func:`run_and_store` memoizes it through
a :class:`RunCache`; :func:`sweep` takes a whole list of specs, dedupes
them against the cache, and fans the misses out over a process pool
(``jobs`` workers, default ``os.cpu_count()``, degrading gracefully to
serial on 1-CPU boxes or when the pool cannot start).

On top sit the two sweep assemblers the benchmark scripts use:
:func:`attribution_sweep` (the ``BENCH_attribution.json`` payload) and
the chaos harness hooks consumed by
:func:`repro.faults.chaos.chaos_sweep`.  Both produce payloads
value-identical to their uncached counterparts — the cache changes
wall-clock, never results.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.runcache import resilience
from repro.runcache.key import RunSpec, _as_params
from repro.runcache.resilience import (
    NULL_JOURNAL,
    Quarantined,
    SupervisionPolicy,
    SupervisionStats,
    SweepJournal,
)
from repro.runcache.store import RunCache
from repro.telemetry import runtime as telemetry_runtime
from repro.telemetry.emit import new_trace_id
from repro.telemetry.merge import load_records, worker_cache_counts

#: artifact schema stamp stored alongside trace-kind artifacts
TRACE_ARTIFACT_KEYS = ("files", "summary", "n_trace_events")


# -- spec builders -----------------------------------------------------------


def capture_spec(workload: str, steps: int, seed: int = 0) -> RunSpec:
    """Spec for one serial physics capture (the expensive part).

    ``seed`` seeds the workload builder, so one workload family yields
    arbitrarily many independent runs — the ensemble engine's unit of
    batching."""
    from repro.workloads import resolve_workload

    return RunSpec(
        kind="capture",
        workload=resolve_workload(workload),
        steps=steps,
        seed=seed,
    )


def observe_spec(
    workload: str,
    steps: int,
    threads: int,
    machine: str,
    *,
    seed: int = 0,
    params=None,
    fault_plan=None,
    affinities=None,
    master_affinity=None,
    **options,
) -> RunSpec:
    """Spec for one traced + classified replay (attribution input)."""
    from repro.runcache.key import params_to_spec
    from repro.workloads import resolve_workload

    return RunSpec(
        kind="observe",
        workload=resolve_workload(workload),
        steps=steps,
        seed=seed,
        threads=threads,
        machine=machine,
        params=params_to_spec(params) if params is not None else None,
        fault_plan=(
            fault_plan.to_dict() if fault_plan is not None else None
        ),
        affinities=(
            tuple(tuple(a) for a in affinities)
            if affinities is not None
            else None
        ),
        master_affinity=(
            tuple(master_affinity) if master_affinity is not None else None
        ),
        options=options,
    )


def trace_spec(
    workload: str, steps: int, threads: int, machine: str, seed: int = 0
) -> RunSpec:
    """Spec for the ``repro trace`` artifact bundle."""
    from repro.workloads import resolve_workload

    return RunSpec(
        kind="trace",
        workload=resolve_workload(workload),
        steps=steps,
        seed=seed,
        threads=threads,
        machine=machine,
    )


def toolerror_spec(
    workload: str,
    steps: int,
    threads: int,
    machine: str,
    *,
    seed: int = 0,
    periods: Sequence[float] = (1.0, 0.005),
    fault_plan=None,
) -> RunSpec:
    """Spec for one tool-accuracy leaderboard cell (all modeled tools
    scored against ground truth on one workload x machine point),
    optionally with a fault plan injected into the *measured* run."""
    from repro.workloads import resolve_workload

    return RunSpec(
        kind="toolerror",
        workload=resolve_workload(workload),
        steps=steps,
        seed=seed,
        threads=threads,
        machine=machine,
        fault_plan=(
            fault_plan.to_dict() if fault_plan is not None else None
        ),
        options={"periods": [float(p) for p in periods]},
    )


# -- executing one spec ------------------------------------------------------


def _machine_spec(name: str):
    from repro.machine import MACHINES

    try:
        return MACHINES[name]
    except KeyError:
        raise ValueError(
            f"spec names unknown machine {name!r}; "
            f"choose from {sorted(MACHINES)}"
        ) from None


def machine_key(spec: Union[str, object]) -> str:
    """The ``MACHINES`` registry key for a spec or key (specs carry the
    key, not the display name, so digests stay registry-stable)."""
    from repro.machine import MACHINES

    if isinstance(spec, str):
        _machine_spec(spec)  # validate
        return spec
    for key, value in MACHINES.items():
        if value is spec or value == spec:
            return key
    raise ValueError(f"machine spec {spec!r} is not in MACHINES")


def _run_kwargs(spec: RunSpec) -> Dict[str, Any]:
    """Replay kwargs encoded in a spec's params/plan/pinning/options."""
    from repro.concurrent import QueueMode
    from repro.faults.plan import FaultPlan

    opts = dict(spec.options)
    kwargs: Dict[str, Any] = {}
    if spec.params is not None:
        kwargs["params"] = _as_params(spec.params)
    if spec.fault_plan is not None:
        kwargs["fault_plan"] = FaultPlan.from_dict(spec.fault_plan)
    if spec.affinities is not None:
        kwargs["affinities"] = [list(a) for a in spec.affinities]
    if spec.master_affinity is not None:
        kwargs["master_affinity"] = list(spec.master_affinity)
    if "queue_mode" in opts:
        kwargs["queue_mode"] = QueueMode(opts["queue_mode"])
    for name in (
        "partition", "repeat", "fuse_rebuild",
        "assign", "chunk", "chunk_factor",
        "steal_policy", "steal_cost_cycles", "pop_overhead_cycles",
    ):
        if name in opts:
            kwargs[name] = opts[name]
    if opts.get("gc_model") == "chaos":
        from repro.faults.chaos import _chaos_gc_model

        kwargs["gc_model"] = _chaos_gc_model()
    return kwargs


def cached_capture(
    cache: Optional[RunCache], workload: str, steps: int
):
    """The captured physics trace for a workload, through the cache.

    ``cache=None`` degrades to a plain :func:`capture_trace` call, so
    callers need no branching.
    """
    from repro.core.simulate import capture_trace
    from repro.workloads import BUILDERS, resolve_workload

    name = resolve_workload(workload)
    if cache is None:
        return capture_trace(BUILDERS[name](), steps)
    artifact, _hit = run_and_store(cache, capture_spec(name, steps))
    return artifact


def _execute_capture(spec: RunSpec):
    from repro.core.simulate import capture_trace
    from repro.workloads import BUILDERS

    return capture_trace(BUILDERS[spec.workload](seed=spec.seed), spec.steps)


def _execute_observe(spec: RunSpec, cache: Optional[RunCache]):
    from repro.obs.attribution import observe_run
    from repro.workloads import BUILDERS

    wl = BUILDERS[spec.workload]()
    trace = cached_capture(cache, spec.workload, spec.steps)
    obs = observe_run(
        trace,
        wl.system.n_atoms,
        _machine_spec(spec.machine),
        spec.threads,
        seed=spec.seed,
        name=wl.name,
        workload=wl.name,
        **_run_kwargs(spec),
    )
    # the live SimMachine is neither picklable nor an artifact anyone
    # consumes downstream of attribution — strip it before storage
    if obs.result is not None:
        obs.result.machine = None
    return obs


def _execute_trace(spec: RunSpec, cache: Optional[RunCache]) -> dict:
    """The ``repro trace`` bundle: trace/metrics file bytes + summary."""
    from repro.core.simulate import SimulatedParallelRun
    from repro.machine.machine import SimMachine
    from repro.obs import (
        MetricsRegistry,
        Tracer,
        collect_executor_metrics,
        collect_machine_metrics,
        collect_span_metrics,
        write_chrome_trace,
        write_metrics,
    )
    from repro.perftools import GroundTruthTimeline
    from repro.workloads import BUILDERS

    machine_spec = _machine_spec(spec.machine)
    wl = BUILDERS[spec.workload]()
    trace = cached_capture(cache, spec.workload, spec.steps)
    machine = SimMachine(machine_spec, seed=spec.seed)
    tracer = Tracer().attach(machine.sim)
    run = SimulatedParallelRun(
        trace, wl.system.n_atoms, machine, spec.threads, name="wl"
    )
    result = run.run()
    tracer.detach()
    spans = tracer.task_spans()
    truth = GroundTruthTimeline(machine.scheduler.trace.events)

    files: Dict[str, bytes] = {}
    with tempfile.TemporaryDirectory(prefix="repro-trace-") as tmp:
        trace_path = os.path.join(tmp, "trace.json")
        n_events = write_chrome_trace(trace_path, spans, timeline=truth)
        registry = MetricsRegistry()
        collect_machine_metrics(machine, registry)
        collect_executor_metrics(run.pool, registry)
        collect_span_metrics(spans, registry)
        json_path = os.path.join(tmp, "metrics.json")
        csv_path = os.path.join(tmp, "metrics.csv")
        write_metrics(json_path, csv_path, registry)
        for path in (trace_path, json_path, csv_path):
            with open(path, "rb") as fh:
                files[os.path.basename(path)] = fh.read()

    complete = [s for s in spans if s.complete]
    lines = [
        f"traced {spec.workload}: {result.steps} steps x "
        f"{spec.threads} threads on simulated {machine_spec.name}",
        f"simulated runtime {result.sim_seconds * 1e3:.3f} ms, "
        f"{len(tracer.events)} bus events, {len(spans)} task spans "
        f"({len(complete)} complete)",
    ]
    by_label: Dict[str, list] = {}
    for s in complete:
        label = s.label or "task"
        agg = by_label.setdefault(label, [0, 0.0, 0.0])
        agg[0] += 1
        agg[1] += s.exec_time
        agg[2] += s.queue_wait
    for label in sorted(by_label):
        n, exec_t, wait_t = by_label[label]
        lines.append(
            f"  {label:<12} {n:>4} tasks  exec {exec_t * 1e3:8.3f} ms  "
            f"mean queue wait {wait_t / n * 1e6:8.1f} us"
        )
    for llc in machine.llc_states:
        total = llc.bytes_hit + llc.bytes_missed
        ratio = llc.bytes_hit / total if total else 0.0
        lines.append(
            f"  LLC {llc.llc_id}: hit ratio {ratio * 100:.1f}% "
            f"({llc.bytes_hit / 2**20:.1f} MB hit, "
            f"{llc.bytes_missed / 2**20:.1f} MB missed)"
        )
    migrations = sum(result.migrations.values())
    lines.append(f"  thread migrations: {migrations}")
    return {
        "files": files,
        "summary": "\n".join(lines),
        "n_trace_events": n_events,
    }


def _execute_chaos_ref(spec: RunSpec, cache: Optional[RunCache]) -> dict:
    """Fault-free reference replay: the duration chaos plans scale by."""
    from repro.core.simulate import SimulatedParallelRun
    from repro.machine.machine import SimMachine
    from repro.workloads import BUILDERS

    wl = BUILDERS[spec.workload]()
    trace = cached_capture(cache, spec.workload, spec.steps)
    machine = SimMachine(_machine_spec(spec.machine), seed=spec.seed)
    kwargs = _run_kwargs(spec)
    ref = SimulatedParallelRun(
        trace, wl.system.n_atoms, machine, spec.threads,
        name=wl.name, **kwargs,
    ).run()
    return {"sim_seconds": ref.sim_seconds}


def _execute_chaos_case(spec: RunSpec, cache: Optional[RunCache]) -> dict:
    from repro.concurrent import QueueMode
    from repro.faults.chaos import run_chaos_case
    from repro.faults.plan import FaultPlan
    from repro.workloads import BUILDERS

    wl = BUILDERS[spec.workload]()
    trace = cached_capture(cache, spec.workload, spec.steps)
    plan = (
        FaultPlan.from_dict(spec.fault_plan)
        if spec.fault_plan is not None
        else None
    )
    opts = dict(spec.options)
    return run_chaos_case(
        wl,
        plan,
        spec.threads,
        spec=_machine_spec(spec.machine),
        steps=spec.steps,
        seed=spec.seed,
        trace=trace,
        phase_timeout_factor=opts.get("phase_timeout_factor") or 20.0,
        queue_mode=QueueMode(opts.get("queue_mode", "single")),
    )


def _execute_toolerror(spec: RunSpec, cache: Optional[RunCache]) -> dict:
    """One leaderboard cell: every modeled tool's displayed-vs-true
    error on this (workload, machine) point.  The physics capture is
    the only nested dependency, so it routes through the cache."""
    from repro.faults.plan import FaultPlan
    from repro.obs.leaderboard import toolerror_cell

    _machine_spec(spec.machine)  # validate before the expensive part
    trace = cached_capture(cache, spec.workload, spec.steps)
    periods = tuple(spec.options.get("periods") or (1.0, 0.005))
    return toolerror_cell(
        spec.workload,
        spec.steps,
        spec.threads,
        spec.machine,
        seed=spec.seed,
        periods=periods,
        trace=trace,
        fault_plan=(
            FaultPlan.from_dict(spec.fault_plan)
            if spec.fault_plan is not None
            else None
        ),
    )


_EXECUTORS = {
    "capture": lambda spec, cache: _execute_capture(spec),
    "observe": _execute_observe,
    "trace": _execute_trace,
    "chaos_ref": _execute_chaos_ref,
    "chaos_case": _execute_chaos_case,
    "toolerror": _execute_toolerror,
}


def execute_spec(spec: RunSpec, cache: Optional[RunCache] = None):
    """Run a spec from scratch and return its artifact.

    ``cache`` is only consulted for *nested* dependencies (an observe
    spec's physics capture) — the spec itself always executes, which is
    what makes this the verify path's ground truth.
    """
    if "REPRO_PROCESS_FAULTS" in os.environ:  # chaos harness only
        from repro.faults import process as process_faults

        process_faults.execution_fault(spec.label())
    return _EXECUTORS[spec.kind](spec, cache)


def run_and_store(
    cache: RunCache, spec: RunSpec
) -> Tuple[Any, bool]:
    """Memoized execution: ``(artifact, was_hit)``."""
    artifact = cache.get(spec)
    if artifact is not None:
        return artifact, True
    artifact = execute_spec(spec, cache=cache)
    cache.put(spec, artifact)
    return artifact, False


# -- the orchestrator --------------------------------------------------------


@dataclass
class SweepResult:
    """Outcome of one deduped, possibly-parallel sweep."""

    specs: List[RunSpec]
    artifacts: List[Any]
    #: per input spec: True when it was served from the cache
    hit_flags: List[bool]
    jobs: int
    #: distinct digests actually executed (cache misses after dedup)
    executed: List[str] = field(default_factory=list)
    #: True when the misses ran under a fan-out span — across the
    #: process pool, or serially after the pool degraded
    fanout: bool = False
    #: per pool worker: ``{"hits": n, "misses": n}`` against the shared
    #: store, folded out of the workers' telemetry by the merge step
    worker_cache: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: specs the supervisor gave up on (permanent failures); their
    #: artifact slots hold None
    quarantined: List[Quarantined] = field(default_factory=list)
    #: supervision counters (see :mod:`repro.runcache.resilience`)
    retries: int = 0
    timeouts: int = 0
    pool_restarts: int = 0
    #: True when repeated pool breaks forced in-process serial execution
    degraded: bool = False
    #: cache hits that were also journaled complete by the interrupted
    #: run this sweep resumed (served with zero re-execution)
    resumed: int = 0
    #: homogeneous miss-batches routed through the vectorized ensemble
    #: engine, and the runs they covered (see :mod:`repro.ensemble`)
    ensemble_batches: int = 0
    ensemble_runs: int = 0

    @property
    def ok(self) -> bool:
        """True when every spec produced an artifact (nothing
        quarantined) — the full-success exit criterion."""
        return not self.quarantined

    @property
    def hits(self) -> int:
        return sum(self.hit_flags)

    @property
    def misses(self) -> int:
        return len(self.hit_flags) - self.hits

    @property
    def worker_hits(self) -> int:
        return sum(c["hits"] for c in self.worker_cache.values())

    @property
    def worker_misses(self) -> int:
        return sum(c["misses"] for c in self.worker_cache.values())

    @property
    def hit_rate(self) -> float:
        return self.hits / len(self.hit_flags) if self.hit_flags else 0.0

    def artifact_for(self, spec: RunSpec):
        """The artifact of the given (or an equal) spec."""
        for s, a in zip(self.specs, self.artifacts):
            if s == spec:
                return a
        raise KeyError(f"spec not in sweep: {spec.label()}")


def _pool_worker(args) -> str:
    """Execute one spec in a subprocess, publishing into the shared
    on-disk cache; returns the digest the parent reloads.

    The payload carries the parent's telemetry run directory and
    fan-out span id, so the worker joins the parent's trace: it opens
    its own JSONL file in the run, wraps the execution in a ``shard``
    span parented to the fan-out, and publishes its cache hit/miss
    counts as sweep-labeled counter samples the parent folds back into
    :attr:`SweepResult.worker_cache`.  With a journal active it also
    appends a ``started`` record *before* executing — the proof the
    chaos harness uses that resumed sweeps never re-enter completed
    specs.
    """
    spec, root, max_bytes, tel_root, sweep_id, journal_root, attempt = args
    cache = RunCache(root, max_bytes=max_bytes)
    digest = cache.digest(spec)
    journal = (
        SweepJournal(journal_root) if journal_root else NULL_JOURNAL
    )
    journal.started(digest, attempt=attempt)
    if "REPRO_PROCESS_FAULTS" in os.environ:  # chaos harness only
        from repro.faults import process as process_faults

        # may SIGKILL or hang this worker — after the journal record,
        # so the parent sees a started-but-never-finished entry
        process_faults.worker_started(spec.label())
    emitter = telemetry_runtime.activate(tel_root, parent_id=sweep_id)
    try:
        with emitter.span(
            "shard", label=spec.label(), kind=spec.kind,
            sweep=sweep_id, attempt=attempt,
        ):
            run_and_store(cache, spec)
        worker = str(os.getpid())
        emitter.counter(
            "worker_cache_hits", cache.session_hits,
            sweep=sweep_id, worker=worker,
        )
        emitter.counter(
            "worker_cache_misses", cache.session_misses,
            sweep=sweep_id, worker=worker,
        )
    finally:
        telemetry_runtime.deactivate()
        journal.close()
    return digest


def default_jobs() -> int:
    """Worker-pool width: the CPUs *this process may run on*.

    ``os.cpu_count()`` reports the machine's full core count even when
    the process is confined to a subset by cgroups or CPU affinity
    (containers, CI runners), which oversubscribes the pool; the
    scheduling affinity mask is the honest number where available."""
    try:
        return len(os.sched_getaffinity(0)) or (os.cpu_count() or 1)
    except (AttributeError, OSError):  # non-Linux platforms
        return os.cpu_count() or 1


def sweep(
    specs: Sequence[RunSpec],
    cache: Optional[RunCache] = None,
    jobs: Optional[int] = None,
    *,
    journal: Optional[os.PathLike] = None,
    resume: Optional[os.PathLike] = None,
    policy: Optional[SupervisionPolicy] = None,
    ensemble: Optional[bool] = None,
) -> SweepResult:
    """Dedupe ``specs`` against the cache and execute the misses.

    Without a cache every *distinct* spec executes serially in-process
    (duplicates still dedupe).  With a cache, misses run across a
    ``ProcessPoolExecutor`` of ``jobs`` workers (default
    ``os.cpu_count()``) that publish into the shared store; a 1-CPU
    box, a single miss, or a pool that fails to start all degrade to
    the serial path.

    Crash safety (see :mod:`repro.runcache.resilience`):

    * ``journal=dir`` appends every submission/start/finish/failure to
      ``dir/sweep-journal.jsonl``;
    * ``resume=dir`` additionally *replays* that journal first —
      digests journaled finished and still cached are served without
      re-execution, previously quarantined digests stay quarantined
      (unless ``policy.retry_quarantined``), and journaling continues
      into the same file;
    * ``policy`` sets retries/timeout/quarantine.  Defaults preserve
      the historical semantics for plain calls (first error
      propagates); journaled or resumed sweeps default to the
      supervised :class:`SupervisionPolicy` (bounded retries,
      quarantine instead of raise).

    ``ensemble`` controls the vectorized batch path (see
    :mod:`repro.ensemble`): ``None`` (auto, the default) and ``True``
    route homogeneous miss-batches — same workload family and step
    count, varying seed/threads/machine — through the batched engine
    before the pool sees them; ``False`` disables routing.  Either way
    every run's artifact is published under its own spec digest with
    identical journal records, so cache/journal consumers see no
    difference.
    """
    if resume is not None and journal is not None and (
        Path(resume) != Path(journal)
    ):
        raise ValueError("pass either journal= or resume=, not both")
    journal_root = resume if resume is not None else journal
    if policy is None:
        policy = (
            SupervisionPolicy()
            if journal_root is not None
            else resilience.PROPAGATE_POLICY
        )
    prior = (
        resilience.load_journal(resume) if resume is not None else None
    )
    jrnl = (
        SweepJournal(journal_root)
        if journal_root is not None
        else NULL_JOURNAL
    )

    jobs = default_jobs() if jobs is None else max(1, jobs)
    emitter = telemetry_runtime.current()
    stats = SupervisionStats()
    quarantined: List[Quarantined] = []
    resumed = 0
    try:
        with emitter.span(
            "sweep", n_specs=len(specs), jobs=jobs,
            resumed=resume is not None,
        ) as sweep_span:
            unique: Dict[str, RunSpec] = {}
            keys: List[str] = []
            for spec in specs:
                key = (
                    cache.digest(spec)
                    if cache is not None
                    else spec.encode()
                )
                keys.append(key)
                unique.setdefault(key, spec)

            prior_completed = prior.completed if prior else set()
            prior_quarantined = (
                {} if prior is None or policy.retry_quarantined
                else prior.quarantined
            )
            artifacts: Dict[str, Any] = {}
            hit_by_key: Dict[str, bool] = {}
            misses: List[Tuple[str, RunSpec]] = []
            for key, spec in unique.items():
                if key in prior_quarantined:
                    record = prior_quarantined[key]
                    hit_by_key[key] = False
                    quarantined.append(
                        Quarantined(
                            digest=key,
                            label=spec.label(),
                            attempts=int(record.get("attempts", 0)),
                            error=str(record.get("error", "")),
                            carried=True,
                        )
                    )
                    continue
                artifact = cache.get(spec) if cache is not None else None
                if artifact is not None:
                    artifacts[key] = artifact
                    hit_by_key[key] = True
                    if key in prior_completed:
                        resumed += 1
                else:
                    hit_by_key[key] = False
                    misses.append((key, spec))

            jrnl.begin(
                [
                    {
                        "digest": key,
                        "label": spec.label(),
                        "spec": spec.canonical(),
                    }
                    for key, spec in unique.items()
                ],
                jobs=jobs,
                resumed=resume is not None,
            )

            executed: List[str] = []
            worker_cache: Dict[str, Dict[str, int]] = {}
            fanout = False
            ensemble_batches = ensemble_runs = 0
            if misses and ensemble is not False and (
                # the process-fault chaos harness injects faults into
                # pool workers; keep its misses on the process path
                "REPRO_PROCESS_FAULTS" not in os.environ
            ):
                from repro.ensemble.routing import route_misses

                ensemble_batches, ensemble_runs, misses = route_misses(
                    misses, cache,
                    journal=jrnl, artifacts=artifacts,
                    executed=executed, emitter=emitter,
                )
            if misses:
                pool_counts = None
                pooled = (
                    cache is not None and jobs > 1 and len(misses) > 1
                )
                if pooled:
                    pool_counts = _sweep_parallel(
                        misses, cache, jobs, artifacts, executed,
                        policy=policy, journal=jrnl, stats=stats,
                        quarantined=quarantined, emitter=emitter,
                    )
                if pool_counts is None:
                    # deliberate serial (no cache / 1 job / 1 miss), or
                    # degraded: the pool could not be created at all
                    if pooled:
                        stats.degraded = True
                        with emitter.span(
                            "fanout", n_misses=len(misses), jobs=1,
                            degraded=True,
                        ) as fanout_span:
                            sweep_id = (
                                fanout_span.span_id
                                or new_trace_id()[:12]
                            )
                            emitter.event(
                                "sweep.degraded",
                                remaining=len(misses), restarts=0,
                            )
                            worker_cache = (
                                resilience.run_serial_supervised(
                                    misses, cache, policy=policy,
                                    journal=jrnl, stats=stats,
                                    artifacts=artifacts,
                                    executed=executed,
                                    quarantined=quarantined,
                                    emitter=emitter, sweep_id=sweep_id,
                                )
                            )
                        fanout = True
                    else:
                        resilience.run_serial_supervised(
                            misses, cache, policy=policy,
                            journal=jrnl, stats=stats,
                            artifacts=artifacts, executed=executed,
                            quarantined=quarantined, emitter=emitter,
                        )
                else:
                    fanout = True
                    worker_cache = pool_counts
            if sweep_span.span_id is not None:
                sweep_span.attrs.update(
                    unique=len(unique),
                    misses=len(misses),
                    fanout=fanout,
                    retries=stats.retries,
                    quarantined=len(quarantined),
                    degraded=stats.degraded,
                    resumed_hits=resumed,
                    ensemble_batches=ensemble_batches,
                    ensemble_runs=ensemble_runs,
                )
        jrnl.end(
            executed=len(executed), quarantined=len(quarantined),
            resumed=resumed,
        )
    finally:
        jrnl.close()

    return SweepResult(
        specs=list(specs),
        artifacts=[artifacts.get(k) for k in keys],
        hit_flags=[hit_by_key[k] for k in keys],
        jobs=jobs if len(misses) > 1 else 1,
        executed=executed,
        fanout=fanout,
        worker_cache=worker_cache,
        quarantined=quarantined,
        retries=stats.retries,
        timeouts=stats.timeouts,
        pool_restarts=stats.pool_restarts,
        degraded=stats.degraded,
        resumed=resumed,
        ensemble_batches=ensemble_batches,
        ensemble_runs=ensemble_runs,
    )


def _sweep_parallel(
    misses: List[Tuple[str, RunSpec]],
    cache: RunCache,
    jobs: int,
    artifacts: Dict[str, Any],
    executed: List[str],
    *,
    policy: SupervisionPolicy,
    journal,
    stats: SupervisionStats,
    quarantined: List[Quarantined],
    emitter,
) -> Optional[Dict[str, Dict[str, int]]]:
    """Fan cache misses out over a supervised process pool.

    Returns the per-worker cache hit/miss counts folded out of the
    workers' telemetry, or ``None`` when a pool could not be created
    at all (the caller falls back to the serial path).  With a
    telemetry run active the workers emit straight into it; otherwise
    they emit into an ephemeral directory that exists only long enough
    to fold the counts, so :attr:`SweepResult.worker_cache` is
    populated either way.  If supervision degraded part of the work to
    in-process serial, the parent's own hit/miss delta joins the counts
    under its pid.
    """
    ephemeral: Optional[str] = None
    if telemetry_runtime.active():
        tel_root = str(emitter.run.root)
    else:
        ephemeral = tempfile.mkdtemp(prefix="repro-telemetry-")
        tel_root = ephemeral
    parent_hits = cache.session_hits
    parent_misses = cache.session_misses
    try:
        with emitter.span(
            "fanout", n_misses=len(misses), jobs=min(jobs, len(misses))
        ) as fanout_span:
            sweep_id = fanout_span.span_id or new_trace_id()[:12]
            ran = resilience.run_pool_supervised(
                misses, cache, jobs,
                tel_root=tel_root, sweep_id=sweep_id,
                policy=policy, journal=journal, stats=stats,
                artifacts=artifacts, executed=executed,
                quarantined=quarantined, emitter=emitter,
            )
            if ran is None:
                return None
        records, _skipped = load_records(tel_root)
        counts = worker_cache_counts(records, sweep_id)
    finally:
        if ephemeral is not None:
            shutil.rmtree(ephemeral, ignore_errors=True)
    done_keys = set(executed) | set(artifacts)
    quarantined_keys = {q.digest for q in quarantined}
    for key, spec in misses:
        if key in quarantined_keys:
            continue
        if key in artifacts:
            continue
        artifact = cache.get(spec)
        if artifact is None:  # worker died before publishing
            artifact, _ = run_and_store(cache, spec)
        artifacts[key] = artifact
        if key not in done_keys:
            executed.append(key)
    # the parent's own lookups (reloads + degraded serial execution)
    # count as one more worker so fan-out accounting stays conserved
    delta_h = cache.session_hits - parent_hits
    delta_m = cache.session_misses - parent_misses
    if delta_h or delta_m:
        me = str(os.getpid())
        mine = counts.setdefault(me, {"hits": 0, "misses": 0})
        mine["hits"] += delta_h
        mine["misses"] += delta_m
    return counts


# -- sweep assemblers --------------------------------------------------------


def attribute_cached(
    workload: str,
    n_threads: int,
    *,
    spec: Union[str, object] = "i7-920",
    steps: int = 5,
    seed: int = 0,
    cache: RunCache,
    jobs: Optional[int] = None,
):
    """Cache-backed :func:`repro.obs.attribution.attribute` (defaults
    only — no fault plan / custom params): capture and both
    observations come through the store, the pure decomposition is
    recomputed fresh.  Value-identical to the uncached call."""
    from repro.obs.attribution import attribute_observations
    from repro.workloads import resolve_workload

    key = machine_key(spec)
    machine_spec = _machine_spec(key)
    name = resolve_workload(workload)
    specs = [
        capture_spec(name, steps),
        observe_spec(name, steps, 1, key, seed=seed),
    ]
    if n_threads != 1:
        specs.append(observe_spec(name, steps, n_threads, key, seed=seed))
    result = sweep(specs, cache, jobs=jobs)
    trace, baseline = result.artifacts[0], result.artifacts[1]
    obs = baseline if n_threads == 1 else result.artifacts[2]
    return attribute_observations(
        obs, baseline, trace, machine=machine_spec.name
    )


def attribution_sweep(
    workloads: Sequence[str] = ("salt", "nanocar", "Al-1000"),
    threads: Sequence[int] = (1, 2, 4, 8),
    *,
    spec: Union[str, object] = "i7-920",
    steps: int = 5,
    seed: int = 0,
    cache: Optional[RunCache] = None,
    jobs: Optional[int] = None,
) -> Tuple[dict, SweepResult]:
    """Cache-backed :func:`repro.obs.attribution.bench_attribution`.

    Returns ``(payload, sweep_result)``: the payload is byte-identical
    to the uncached ``repro.attribution.bench/1`` one — captures and
    observations come from the cache (or the pool executing the
    misses), and the attribution arithmetic (cheap, pure) is recomputed
    fresh — while the :class:`SweepResult` carries the hit/miss stats
    the benchmark scripts report.
    """
    from repro.obs.attribution import (
        BENCH_SCHEMA,
        BUCKETS,
        attribute_observations,
        result_to_dict,
    )
    from repro.workloads import resolve_workload

    key = machine_key(spec)
    machine_spec = _machine_spec(key)
    names = [resolve_workload(w) for w in workloads]

    specs: List[RunSpec] = []
    for name in names:
        specs.append(capture_spec(name, steps))
        for n in dict.fromkeys([1, *threads]):
            specs.append(
                observe_spec(name, steps, n, key, seed=seed)
            )
    result = sweep(specs, cache, jobs=jobs)

    runs: List[dict] = []
    for name in names:
        trace = result.artifact_for(capture_spec(name, steps))
        baseline = result.artifact_for(
            observe_spec(name, steps, 1, key, seed=seed)
        )
        for n in threads:
            obs = (
                baseline
                if n == 1
                else result.artifact_for(
                    observe_spec(name, steps, n, key, seed=seed)
                )
            )
            res = attribute_observations(
                obs, baseline, trace, machine=machine_spec.name
            )
            runs.append(result_to_dict(res))
    payload = {
        "schema": BENCH_SCHEMA,
        "machine": machine_spec.name,
        "steps": steps,
        "seed": seed,
        "workloads": names,
        "threads": list(threads),
        "buckets": list(BUCKETS),
        "runs": runs,
    }
    return payload, result
