"""VisualVM models: per-method CPU instrumentation and its cost.

§IV-A: "using VisualVM and enabling the per-method cpu utilization
instrumentation causes the Molecular Workbench simulation to run at
roughly one quarter its normal speed.  Much of the system's processing
resources are devoted to TCP traffic between the application and the
measurement tool."

:class:`VisualVmCpuInstrumentation` inflates every task by the
instrumentation factor *and* runs a tool-agent thread that burns CPU
shipping samples over TCP — on a fully loaded machine the agent
competes with worker threads, and "the entire system waits at a
barrier" for whichever worker lost its core, masking true imbalance.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.concurrent.simexec import Instrumentation, SimTask
from repro.des import Timeout
from repro.machine.cost import WorkCost


class VisualVmCpuInstrumentation(Instrumentation):
    """Per-method instrumentation: ~4x per-task inflation + agent thread.

    Parameters
    ----------
    machine:
        The simulated machine; the TCP agent thread is spawned on it.
    inflation:
        Multiplier applied to every task's cost (method-entry/exit
        bytecode hooks); the paper observed ~4x.
    agent_utilization:
        Fraction of one core the measurement agent consumes streaming
        data to the tool.
    agent_duration:
        How long (simulated seconds) the agent keeps running.
    """

    def __init__(
        self,
        machine,
        inflation: float = 4.0,
        agent_utilization: float = 0.6,
        agent_period: float = 0.002,
        agent_duration: Optional[float] = None,
    ):
        if inflation < 1.0:
            raise ValueError(f"inflation must be >= 1: {inflation}")
        if not 0.0 <= agent_utilization < 1.0:
            raise ValueError(
                f"agent_utilization must be in [0,1): {agent_utilization}"
            )
        self.machine = machine
        self.inflation = inflation
        #: per-method (task label) sampled CPU totals, what the tool shows
        self.method_cpu: Dict[str, float] = {}
        self._starts: Dict[int, float] = {}
        if agent_utilization > 0.0:
            busy = agent_period * agent_utilization
            idle = agent_period - busy
            machine.thread(
                self._agent_body(busy, idle, agent_duration),
                "visualvm-agent",
            )

    def _agent_body(self, busy: float, idle: float, duration):
        cycles = busy * self.machine.spec.freq_hz
        while True:
            if duration is not None and self.machine.now >= duration:
                return
            yield WorkCost(cycles=cycles, label="tcp-agent")
            yield Timeout(idle)

    def transform_cost(self, worker_index: int, cost: WorkCost) -> WorkCost:
        return cost.scaled(self.inflation)

    def on_task_start(self, worker_index: int, task: SimTask):
        """Record the instrumented task start (no extra sim cost)."""
        self._starts[id(task)] = self.machine.now
        yield from ()

    def on_task_end(self, worker_index: int, task: SimTask):
        """Attribute the elapsed time to the method's CPU total."""
        started = self._starts.pop(id(task), self.machine.now)
        label = task.cost.label or "method"
        self.method_cpu[label] = self.method_cpu.get(label, 0.0) + (
            self.machine.now - started
        )
        yield from ()

    def hot_methods(self):
        """The call-stack hot list the tool displays (label, seconds)."""
        return sorted(
            self.method_cpu.items(), key=lambda kv: kv[1], reverse=True
        )
