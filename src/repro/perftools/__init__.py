"""Models of the performance-analysis tools the paper used.

The paper's contribution is as much about *tools* as about MD: JaMON
monitors that serialize the program they measure (§IV-A), VisualVM
instrumentation that slows it 4x, thread-state samplers whose 1 s /
5-10 ms granularity cannot resolve 80-5000 µs work quanta (§IV-B),
profilers that cannot say what code a thread is running (§IV-C), heap
viewers without addresses or thread attribution (§V-A/B), and the
missing topology tool (§V-C).

Each model implements the *measurement mechanism* of its tool against
the simulated machine, so every observer effect and blind spot is
reproducible — and, because the simulation also has ground truth, each
tool's error is quantifiable, which the original study could never do.

===============  ===========================================
module           models
===============  ===========================================
``jamon``        synchronized performance monitors
``visualvm``     per-method instrumentation, live-objects view
``sampling``     thread-state samplers (VisualVM 1 s, VTune 5-10 ms)
``vtune``        thread->core plots (Fig. 2), HW cache counters
``shark``        timestamped call-stack profiles
``heapviewer``   class histograms (and the wished-for views)
``topoview``     the hwloc-like topology report (§V-C's wish)
``memtrace``     address-accurate synthetic load/store streams
``jxperf``       PMU-watchpoint wasteful-memory-op profiler
``timers``       LAMMPS-style timer-placement ablation
===============  ===========================================

The last three are the *next-generation* models: the tools the authors
wished for, scored against the same ground truth as the 2010 ones (see
``repro.obs.leaderboard``).
"""

from repro.perftools.heapviewer import HeapViewer
from repro.perftools.jamon import JaMonInstrumentation, MonitorStats
from repro.perftools.jxperf import (
    JxPerf,
    WastefulReport,
    class_blind_error,
    distribution_error,
    exact_classify,
    pollution_report,
)
from repro.perftools.memtrace import (
    Access,
    AccessStream,
    access_stream_for_trace,
    synthesize_accesses,
    terms_per_step,
)
from repro.perftools.profiler import (
    RandomSamplingProfiler,
    YieldPointProfiler,
    profiler_disagreement,
    true_hot_methods,
)
from repro.perftools.sampling import (
    GroundTruthTimeline,
    SampledTimeline,
    ThreadState,
    ThreadStateSampler,
)
from repro.perftools.shark import SharkProfile
from repro.perftools.timeline import TimelineRenderer
from repro.perftools.timers import (
    TimerAblationReport,
    TimerVariantRow,
    ablate_timers,
)
from repro.perftools.visualvm import VisualVmCpuInstrumentation
from repro.perftools.vtune import VTune
from repro.perftools.topoview import topology_report

__all__ = [
    "Access",
    "AccessStream",
    "GroundTruthTimeline",
    "HeapViewer",
    "JaMonInstrumentation",
    "JxPerf",
    "MonitorStats",
    "RandomSamplingProfiler",
    "SampledTimeline",
    "SharkProfile",
    "ThreadState",
    "ThreadStateSampler",
    "TimelineRenderer",
    "TimerAblationReport",
    "TimerVariantRow",
    "VTune",
    "VisualVmCpuInstrumentation",
    "WastefulReport",
    "YieldPointProfiler",
    "ablate_timers",
    "access_stream_for_trace",
    "class_blind_error",
    "distribution_error",
    "exact_classify",
    "pollution_report",
    "profiler_disagreement",
    "synthesize_accesses",
    "terms_per_step",
    "topology_report",
    "true_hot_methods",
]
