"""Synthetic per-access memory streams for the watchpoint profiler.

The paper's wasteful-memory-op pathology (§V-B) lives *below* the
granularity of every tool it evaluated: the ``Vector3`` convenience
objects allocated inside the force loop are dead the moment they are
consumed, and no 2010 profiler could attribute the resulting cache
pollution to the allocation site.  A JXPerf-style profiler ("Pinpointing
Performance Inefficiencies in Java", PAPERS.md) works on individual
loads and stores, so to score one we need an address-accurate access
stream — which the DES timing model deliberately does not produce (it
tracks region traffic, not addresses).

This module synthesizes that stream from the captured physics trace:
object addresses come from the :class:`repro.jvm.heap.Heap` placement
model (the same fragmented-TLAB layout §V-A observed), per-step term
counts come from the engine's :class:`~repro.md.engine.StepReport`, and
the per-access structure mirrors MW's six-phase timestep:

* ``predict``   — load each atom's position ``Vector3``, store the
  predicted value (anchored atoms are read but never written);
* ``zeroFill``  — store zero into each force slot;
* ``forces``    — per interaction term: gather the neighbour position,
  allocate **two** temporary ``Vector3`` objects (displacement and
  pairwise force — each a zero-init store immediately overwritten by
  the constructor store: a *dead store*), then read-modify-write the
  force accumulator;
* ``reduce``    — load every force slot;
* ``correct``   — load and store each position (anchored atoms are
  blindly re-written with the same value: a *silent store*, the
  movable-flag check MW skipped).

``churn_free=True`` models the paper's hand-optimized rewrite
(primitive arrays, no temporaries, movable-flag checks, clear-on-use
zero fill): by construction it performs **zero** dead and silent
stores, which is exactly the property the classifier tests assert.

Values are symbolic tags, not floats — the stream is an address/value
skeleton for classification, not a physics replay.  Term counts above
``max_terms_per_step`` are stride-capped so Al-1000's ~10^5 pair terms
stay tractable; the *relative* site ranking is unaffected because every
per-term site scales down together.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

from repro.jvm.heap import Heap, PlacementPolicy
from repro.jvm.layout import VECTOR3_LAYOUT, atom_object_graph

#: allocation/usage sites, named the way a Java profiler would show them
SITE_PREDICT = "Predictor.predict [position]"
SITE_ZEROFILL = "Forces.zeroFill [force array]"
SITE_GATHER = "Forces.gather [neighbor position]"
SITE_TEMP = "Vector3.<init> [forces temp]"
SITE_ACCUM = "Forces.accumulate [force slot]"
SITE_REDUCE = "Reduce.sum [force array]"
SITE_CORRECT = "Corrector.update [position]"

#: default cap on emitted force terms per step (stride sampling)
DEFAULT_MAX_TERMS = 2048

#: number of recycled temp slots — a scaled-down TLAB window; dead-store
#: detection is adjacency-based, so the window size only spreads
#: addresses, it never changes classification counts
TEMP_RING_SLOTS = 256

_UNWRITTEN = object()  # address never stored (fresh heap memory)


@dataclass(frozen=True)
class Access:
    """One load or store in the synthetic stream.

    ``value`` is the symbolic content of the address *after* the access
    (for loads: the value read).  ``prev_value`` is the content just
    before a store — what a watchpoint trap handler would read back —
    and ``None`` for loads.
    """

    kind: str  # "load" | "store"
    address: int
    site: str
    class_name: str
    value: Hashable
    prev_value: Optional[Hashable] = None


@dataclass
class AccessStream:
    """The synthesized stream plus the address map the scorers need."""

    events: List[Access]
    n_atoms: int
    steps: int
    #: emitted force terms per step (after the stride cap)
    emitted_terms: List[int]
    #: addresses of the long-lived atom object graph
    atom_addresses: Set[int]
    #: addresses of the recycled temp ``Vector3`` window
    temp_addresses: Set[int]
    #: site -> Java class its accesses touch (for class-blind tools)
    site_classes: Dict[str, str]


def terms_per_step(trace: Sequence) -> List[int]:
    """Force-phase interaction terms per step of a captured trace."""
    out = []
    for report in trace:
        work = report.phase_work.get("forces")
        out.append(int(work.terms) if work is not None else 0)
    return out


def synthesize_accesses(
    step_terms: Sequence[int],
    n_atoms: int,
    *,
    churn_free: bool = False,
    anchored_every: int = 16,
    seed: int = 0,
    max_terms_per_step: Optional[int] = DEFAULT_MAX_TERMS,
    heap_policy: PlacementPolicy = PlacementPolicy.FRAGMENTED,
) -> AccessStream:
    """Synthesize the per-access stream for ``len(step_terms)`` steps.

    ``churn_free`` switches to the optimized-rewrite model (no temp
    objects, movable-flag checks, clear-on-use zero fill) whose streams
    contain no dead or silent stores by construction.
    """
    if n_atoms < 1:
        raise ValueError(f"need at least one atom: {n_atoms}")
    if anchored_every < 0:
        raise ValueError(f"negative anchored_every: {anchored_every}")
    heap = Heap(policy=heap_policy, seed=seed)
    objects = heap.allocate_all(atom_object_graph(n_atoms))
    # graph layout: [array, (Atom, pos, vel, acc, force) * n_atoms]
    pos_addr = [objects[1 + 5 * i + 1].address for i in range(n_atoms)]
    force_addr = [objects[1 + 5 * i + 4].address for i in range(n_atoms)]
    v3 = VECTOR3_LAYOUT.class_name
    ring = [
        heap.allocate(v3, VECTOR3_LAYOUT.instance_bytes)
        for _ in range(TEMP_RING_SLOTS)
    ]
    ring_idx = 0

    def anchored(i: int) -> bool:
        return anchored_every > 0 and i % anchored_every == 0

    shadow: Dict[int, Hashable] = {}
    events: List[Access] = []

    def load(addr: int, site: str, cls: str = v3) -> None:
        events.append(
            Access("load", addr, site, cls, shadow.get(addr, _UNWRITTEN))
        )

    def store(addr: int, value: Hashable, site: str, cls: str = v3) -> None:
        events.append(
            Access(
                "store", addr, site, cls, value,
                prev_value=shadow.get(addr, _UNWRITTEN),
            )
        )
        shadow[addr] = value

    emitted: List[int] = []
    prev_touched: Set[int] = set()
    for s, terms in enumerate(step_terms):
        if terms < 0:
            raise ValueError(f"negative term count at step {s}: {terms}")
        n_emit = terms
        if max_terms_per_step is not None:
            n_emit = min(terms, max_terms_per_step)
        emitted.append(n_emit)

        # predict: read position, write the predicted one (movable only)
        for i in range(n_atoms):
            load(pos_addr[i], SITE_PREDICT)
            if not anchored(i):
                store(pos_addr[i], ("pred", i, s), SITE_PREDICT)

        # zero-fill: MW clears the whole force array; the rewrite clears
        # only the slots the previous step dirtied (clear-on-use)
        zf = (
            sorted(prev_touched) if churn_free else range(n_atoms)
        )
        for i in zf:
            store(force_addr[i], 0, SITE_ZEROFILL)

        touched: Set[int] = set()
        for k in range(n_emit):
            i = k % n_atoms
            j = (i + 1 + k // n_atoms) % n_atoms
            if j == i:
                j = (j + 1) % n_atoms
            load(pos_addr[j], SITE_GATHER)
            if not churn_free:
                # dr = new Vector3(); f = new Vector3() — the JIT does
                # not scalarize them, so each is a zero-init store the
                # constructor immediately kills (the dead store JXPerf's
                # authors found dominating real Java workloads)
                for part in ("dr", "f"):
                    slot = ring[ring_idx]
                    ring_idx = (ring_idx + 1) % len(ring)
                    store(slot.address, 0, SITE_TEMP)
                    store(slot.address, ("v3", part, s, k), SITE_TEMP)
                    load(slot.address, SITE_ACCUM)
            load(force_addr[i], SITE_ACCUM)
            store(force_addr[i], ("f", i, s, k), SITE_ACCUM)
            touched.add(i)

        # reduce: read back what the force loop produced
        red = sorted(touched) if churn_free else range(n_atoms)
        for i in red:
            load(force_addr[i], SITE_REDUCE)

        # correct: read the position, write the corrected one; MW
        # stores anchored atoms' unchanged positions (silent stores),
        # the rewrite checks the movable flag first
        for i in range(n_atoms):
            load(pos_addr[i], SITE_CORRECT)
            if anchored(i):
                if not churn_free:
                    store(pos_addr[i], ("pos", i, "anchored"), SITE_CORRECT)
            else:
                store(pos_addr[i], ("pos", i, s), SITE_CORRECT)
        prev_touched = touched

    return AccessStream(
        events=events,
        n_atoms=n_atoms,
        steps=len(list(step_terms)),
        emitted_terms=emitted,
        atom_addresses=set(pos_addr) | set(force_addr),
        temp_addresses={slot.address for slot in ring},
        site_classes={
            SITE_PREDICT: v3,
            SITE_ZEROFILL: v3,
            SITE_GATHER: v3,
            SITE_TEMP: v3,
            SITE_ACCUM: v3,
            SITE_REDUCE: v3,
            SITE_CORRECT: v3,
        },
    )


def access_stream_for_trace(
    trace: Sequence,
    n_atoms: int,
    *,
    churn_free: bool = False,
    seed: int = 0,
    max_terms_per_step: Optional[int] = DEFAULT_MAX_TERMS,
) -> AccessStream:
    """The synthetic stream for a captured physics trace."""
    return synthesize_accesses(
        terms_per_step(trace),
        n_atoms,
        churn_free=churn_free,
        seed=seed,
        max_terms_per_step=max_terms_per_step,
    )
