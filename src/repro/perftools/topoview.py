"""Topology discovery report — §V-C's wished-for tool.

"It was difficult to determine which virtual processors shared a cache
and which were primary threads or secondary threads on the same core.
A tool or API that aided in deciphering the core and cache topology of
the underlying hardware would have been helpful."

:func:`topology_report` renders everything the paper asked for: the
hwloc-style tree, SMT sibling sets, LLC sharing groups, and pairwise
distance classes — plus annotations for a set of pinned threads so
"pinning two threads to the same physical core inadvertently" is
visible at a glance.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.machine.topology import MachineSpec, Topology


def topology_report(
    spec: MachineSpec,
    pinned: Optional[Dict[str, int]] = None,
) -> str:
    """Human-readable topology summary, optionally annotated with a
    thread→PU pinning map (conflicts are called out)."""
    topo = Topology(spec)
    lines = [topo.render(), ""]
    lines.append("SMT sibling sets:")
    seen = set()
    for pu in topo.pus():
        sibs = tuple(topo.smt_siblings(pu))
        if sibs not in seen:
            seen.add(sibs)
            lines.append(f"  core {topo.core_of(pu):>3}: PUs {list(sibs)}")
    lines.append("LLC sharing groups:")
    for g in range(topo.n_llc_groups):
        lines.append(f"  LLC#{g}: PUs {topo.pus_of_llc(g)}")
    if pinned:
        lines.append("Pinned threads:")
        by_core: Dict[int, list] = {}
        for name, pu in sorted(pinned.items()):
            core = topo.core_of(pu)
            by_core.setdefault(core, []).append(name)
            lines.append(
                f"  {name:<20} PU {pu:>3}  core {core:>3}  "
                f"LLC#{topo.llc_of(pu)}  socket {topo.socket_of(pu)}"
            )
        for core, names in sorted(by_core.items()):
            if len(names) > 1:
                lines.append(
                    f"  WARNING: {', '.join(names)} share physical "
                    f"core {core} (SMT contention)"
                )
    return "\n".join(lines)
