"""JaMON-style monitors: synchronized counters that serialize the app.

§IV-A: "in order to allow multiple threads to update the performance
counter variables safely, JaMon uses synchronized sections.  We
discovered that these synchronized updates to the performance monitors
were serializing the overall performance of MW and drastically
impacting the very behavior they were intended to measure."

:class:`JaMonInstrumentation` plugs into the simulated executor: every
task start and stop acquires one global lock and spends
``update_cycles`` inside it.  On short tasks the lock becomes the
bottleneck; the monitor data itself (per-label hit counts, total/avg/
max durations — real JaMON's fields) is still collected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.concurrent.simexec import Instrumentation, SimTask
from repro.des import Lock
from repro.machine.cost import WorkCost


@dataclass
class MonitorStats:
    """One monitor's counters (JaMON's hits/total/avg/max/active)."""

    label: str
    hits: int = 0
    total_seconds: float = 0.0
    max_seconds: float = 0.0
    active: int = 0
    max_active: int = 0

    @property
    def avg_seconds(self) -> float:
        return self.total_seconds / self.hits if self.hits else 0.0


class JaMonInstrumentation(Instrumentation):
    """Monitor every task with lock-guarded counter updates.

    Parameters
    ----------
    machine:
        The simulated machine (supplies the clock and the lock).
    update_cycles:
        Work inside each synchronized update.  Real JaMON does a map
        lookup plus several field updates under the monitor lock.
    """

    def __init__(self, machine, update_cycles: float = 2500.0):
        self.machine = machine
        self.update_cycles = update_cycles
        self.lock = Lock(machine.sim, name="jamon")
        self.monitors: Dict[str, MonitorStats] = {}
        self._start_times: Dict[int, float] = {}

    def _monitor(self, label: str) -> MonitorStats:
        if label not in self.monitors:
            self.monitors[label] = MonitorStats(label)
        return self.monitors[label]

    def on_task_start(self, worker_index: int, task: SimTask):
        """Synchronized monitor update before the task runs."""
        yield self.lock.acquire()
        yield WorkCost(cycles=self.update_cycles, label="jamon-start")
        mon = self._monitor(task.cost.label or "task")
        mon.active += 1
        mon.max_active = max(mon.max_active, mon.active)
        self._start_times[id(task)] = self.machine.now
        self.lock.release()

    def on_task_end(self, worker_index: int, task: SimTask):
        """Synchronized monitor update after the task runs."""
        yield self.lock.acquire()
        yield WorkCost(cycles=self.update_cycles, label="jamon-stop")
        mon = self._monitor(task.cost.label or "task")
        started = self._start_times.pop(id(task), self.machine.now)
        elapsed = self.machine.now - started
        mon.hits += 1
        mon.active -= 1
        mon.total_seconds += elapsed
        mon.max_seconds = max(mon.max_seconds, elapsed)
        self.lock.release()

    @property
    def contention_ratio(self) -> float:
        """Fraction of monitor acquisitions that had to queue — how
        hard the monitors serialized the program."""
        if self.lock.acquire_count == 0:
            return 0.0
        return self.lock.wait_count / self.lock.acquire_count

    def report(self) -> str:
        """JaMON-style hits/avg/max/active table."""
        lines = [
            f"{'Label':<12} {'Hits':>6} {'Avg(us)':>9} {'Max(us)':>9} "
            f"{'MaxActive':>9}"
        ]
        for label in sorted(self.monitors):
            m = self.monitors[label]
            lines.append(
                f"{label:<12} {m.hits:>6} {m.avg_seconds * 1e6:>9.1f} "
                f"{m.max_seconds * 1e6:>9.1f} {m.max_active:>9}"
            )
        return "\n".join(lines)
