"""Shark-style timestamped call-stack profiles.

§IV-C: "Shark's Java Time Profile view did provide timestamped call
stack traces.  However, it would either allow for all threads on a
single core to be traced over time, or a single thread as it moved
between all cores ... A simple way to see what method a thread was
executing at a given moment for all threads would be tremendously
helpful."

:class:`SharkProfile` reproduces both of Shark's views from the
scheduler trace — and, because the simulation has ground truth, also
provides :meth:`all_threads_at` — exactly the cross-thread
moment-in-time view the paper wished for.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Optional, Sequence, Tuple

from repro.machine.machine import SimMachine


class SharkProfile:
    """Timestamped (time, pu, thread, label) execution records."""

    def __init__(self, machine: SimMachine):
        self.machine = machine
        #: per-thread ordered (time, pu, label) begin-execution records
        self.by_thread: Dict[str, List[Tuple[float, int, str]]] = {}
        #: per-pu ordered (time, thread, label)
        self.by_pu: Dict[int, List[Tuple[float, str, str]]] = {}
        for time, thread, pu, what in machine.scheduler.trace.events:
            if not what.startswith("run"):
                continue
            label = what.partition(":")[2]
            self.by_thread.setdefault(thread, []).append((time, pu, label))
            self.by_pu.setdefault(pu, []).append((time, thread, label))

    # -- Shark's two native views -----------------------------------------

    def single_thread_view(self, thread: str) -> List[Tuple[float, int, str]]:
        """One thread traced as it moves between all cores."""
        return list(self.by_thread.get(thread, []))

    def single_core_view(self, pu: int) -> List[Tuple[float, str, str]]:
        """All threads traced on one core over time."""
        return list(self.by_pu.get(pu, []))

    # -- the wished-for view -------------------------------------------------

    def thread_method_at(self, thread: str, time: float) -> Optional[str]:
        """What code this thread was executing at the given moment."""
        records = self.by_thread.get(thread, [])
        times = [t for t, *_ in records]
        k = bisect_right(times, time) - 1
        if k < 0:
            return None
        return records[k][2]

    def all_threads_at(
        self, time: float, threads: Sequence[str]
    ) -> Dict[str, Optional[str]]:
        """§IV-C's wish: for a given moment, what every thread runs."""
        return {t: self.thread_method_at(t, time) for t in threads}

    def render_moment(self, time: float, threads: Sequence[str]) -> str:
        """Text snapshot of what every thread runs at one instant."""
        rows = [f"t = {time * 1e3:.3f} ms"]
        for thread, label in self.all_threads_at(time, threads).items():
            rows.append(f"  {thread:<22} {label or '(not started)'}")
        return "\n".join(rows)
