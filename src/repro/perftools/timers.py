"""Timer-placement ablation: how phase timing itself distorts results.

"A Note on Time Measurements in LAMMPS" (PAPERS.md) showed that the
per-phase times an MD code reports depend heavily on *where* the timer
reads sit relative to the synchronization points: an un-synchronized
timer lets one phase's load-imbalance wait leak into whichever section
happens to read the clock next, so the profile blames the wrong phase.
The paper under reproduction timed MW's phases the simple way (wall
clock around the master's dispatch loop), which is exactly the
configuration this harness scores.

Three timer placements are re-timed against the ground-truth trace
(per-task worker execution intervals — the zero-overhead record no
real harness has):

* ``timer-outside`` — one wall-clock read outside the phase barrier,
  multiplied by the thread count (what MW's master-side timing did):
  dispatch overhead, queue wait, and latch skew all bill to the phase.
* ``timer-free`` — free-running per-worker timers read at task
  boundaries with **no** barrier: each task is billed until the
  worker's *next* task starts, so imbalance wait leaks into the
  finished phase (the LAMMPS note's central artifact).
* ``timer-sync`` — an ``MPI_Barrier``-style synchronization before
  every timer read: waits are separated from work, leaving only the
  per-read timer cost (small, but real — synchronizing is itself a
  perturbation).

Per variant, distortion is the summed per-phase absolute error
relative to total true busy time — directly comparable with the other
tools' leaderboard error metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.report import format_table

#: timer-read placements the harness can score
VARIANTS = ("timer-outside", "timer-free", "timer-sync")

#: one clock read, simulated seconds (a gettimeofday-class call);
#: timer-sync pays it twice per task (before/after), the free-running
#: variant's reads are already inside the billed window
DEFAULT_TIMER_COST = 2e-7


@dataclass
class TimerVariantRow:
    """Per-phase displayed seconds of one timer placement."""

    variant: str
    displayed: Dict[str, float]
    #: summed |displayed - true| across phases / total true seconds
    distortion: float
    #: the phase whose share this placement misstates the most
    worst_phase: str = ""
    worst_error: float = 0.0


@dataclass
class TimerAblationReport:
    """Ground truth + every re-timed variant for one traced run."""

    true_seconds: Dict[str, float]
    rows: List[TimerVariantRow] = field(default_factory=list)

    def row(self, variant: str) -> TimerVariantRow:
        """The scored row of one placement; KeyError if not ablated."""
        for r in self.rows:
            if r.variant == variant:
                return r
        raise KeyError(f"variant not in ablation: {variant!r}")

    def distortions(self) -> Dict[str, float]:
        """Variant -> distortion, the leaderboard's error metric."""
        return {r.variant: r.distortion for r in self.rows}

    def render(self) -> str:
        """ASCII table: ground truth plus every re-timed variant."""
        phases = sorted(self.true_seconds)
        table = []
        for r in self.rows:
            row = {"timer": r.variant}
            for p in phases:
                row[f"{p} (ms)"] = f"{r.displayed.get(p, 0.0) * 1e3:.3f}"
            row["distortion (%)"] = f"{r.distortion * 100:.1f}"
            row["worst phase"] = r.worst_phase
            table.append(row)
        truth = {"timer": "ground truth"}
        for p in phases:
            truth[f"{p} (ms)"] = f"{self.true_seconds[p] * 1e3:.3f}"
        truth["distortion (%)"] = "0.0"
        truth["worst phase"] = "-"
        return format_table([truth] + table)


def _true_phase_seconds(spans: Sequence) -> Dict[str, float]:
    """Ground truth: per-phase summed worker execution seconds."""
    truth: Dict[str, float] = {}
    for span in spans:
        if not span.complete:
            continue
        label = span.label or "task"
        truth[label] = truth.get(label, 0.0) + span.exec_time
    return truth


def _distortion(
    displayed: Dict[str, float], truth: Dict[str, float]
) -> tuple:
    total_true = sum(truth.values())
    if total_true <= 0:
        return 0.0, "", 0.0
    worst_phase, worst = "", -1.0
    err = 0.0
    for phase in set(displayed) | set(truth):
        e = abs(displayed.get(phase, 0.0) - truth.get(phase, 0.0))
        err += e
        if e > worst:
            worst_phase, worst = phase, e
    return err / total_true, worst_phase, worst / total_true


def ablate_timers(
    spans: Sequence,
    phase_windows: Sequence,
    n_threads: int,
    *,
    timer_cost: float = DEFAULT_TIMER_COST,
    variants: Sequence[str] = VARIANTS,
) -> TimerAblationReport:
    """Score each timer placement against the ground-truth trace.

    ``spans`` are the tracer's :class:`~repro.obs.tracer.TaskSpan`
    records; ``phase_windows`` its master-side
    :class:`~repro.obs.tracer.PhaseWindow` list.
    """
    if n_threads < 1:
        raise ValueError(f"n_threads must be >= 1: {n_threads}")
    unknown = sorted(set(variants) - set(VARIANTS))
    if unknown:
        raise ValueError(
            f"unknown timer variant(s) {unknown}; choose from {VARIANTS}"
        )
    truth = _true_phase_seconds(spans)
    report = TimerAblationReport(true_seconds=truth)
    complete = [s for s in spans if s.complete]

    for variant in variants:
        displayed: Dict[str, float] = {}
        if variant == "timer-outside":
            # master wall window x thread count: everything between the
            # submit and the latch trip bills to the phase, idle included
            for win in phase_windows:
                if win.end is None:
                    continue
                displayed[win.name] = (
                    displayed.get(win.name, 0.0)
                    + (win.end - win.begin) * n_threads
                )
        elif variant == "timer-free":
            # free-running per-worker clocks read at task starts: a task
            # is billed until the same worker starts its next task, so
            # post-task latch wait leaks into the finished phase
            by_worker: Dict[Optional[int], List] = {}
            for span in complete:
                by_worker.setdefault(span.worker, []).append(span)
            for tasks in by_worker.values():
                tasks.sort(key=lambda s: s.started)
                for span, nxt in zip(tasks, tasks[1:]):
                    label = span.label or "task"
                    displayed[label] = (
                        displayed.get(label, 0.0)
                        + (nxt.started - span.started)
                    )
                last = tasks[-1]
                label = last.label or "task"
                displayed[label] = (
                    displayed.get(label, 0.0) + last.exec_time
                )
        elif variant == "timer-sync":
            # barrier before each read: waits separated from work; the
            # residual error is the two timer reads around every task
            for span in complete:
                label = span.label or "task"
                displayed[label] = (
                    displayed.get(label, 0.0)
                    + span.exec_time
                    + 2 * timer_cost
                )
        distortion, worst_phase, worst = _distortion(displayed, truth)
        report.rows.append(
            TimerVariantRow(
                variant=variant,
                displayed=displayed,
                distortion=distortion,
                worst_phase=worst_phase,
                worst_error=worst,
            )
        )
    return report
