"""ASCII execution timeline — the unified view §VII calls for.

"Information about all cores in a system, the code executing on them,
and their impact on the memory subsystem, needs to be delivered to the
programmer in a unified and comprehensible manner."

:class:`TimelineRenderer` draws a Gantt-style chart from the scheduler
trace: one row per thread, time flowing right, each cell showing the
phase label executing in that slot (or '.' idle).  Unlike the 2010
tools it has microsecond resolution and every thread on one canvas.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Optional, Sequence, Tuple

from repro.machine.machine import SimMachine

#: phase label -> single display character
_DEFAULT_GLYPHS = {
    "predict": "p",
    "rebuild": "n",
    "forces": "F",
    "reduce": "r",
    "correct": "c",
    "queue-pop": "q",
    "dispatch": "d",
    "display": "g",
    "background": "b",
    "jamon-start": "j",
    "jamon-stop": "j",
    "tcp-agent": "t",
}


class TimelineRenderer:
    """Execution Gantt chart over a time window."""

    def __init__(
        self,
        machine: SimMachine,
        glyphs: Optional[Dict[str, str]] = None,
    ):
        self.machine = machine
        self.glyphs = dict(_DEFAULT_GLYPHS)
        if glyphs:
            self.glyphs.update(glyphs)
        # per-thread sorted (time, kind, label) where kind is run/stop
        self._events: Dict[str, List[Tuple[float, str, str]]] = {}
        for time, thread, _pu, what in machine.scheduler.trace.events:
            if what.startswith("run"):
                label = what.partition(":")[2]
                self._events.setdefault(thread, []).append(
                    (time, "run", label)
                )
            elif what in ("done", "preempt"):
                self._events.setdefault(thread, []).append(
                    (time, "stop", "")
                )

    def _label_at(self, thread: str, time: float) -> Optional[str]:
        events = self._events.get(thread, [])
        times = [t for t, *_ in events]
        k = bisect_right(times, time) - 1
        if k < 0:
            return None
        t, kind, label = events[k]
        return label if kind == "run" else None

    def render(
        self,
        threads: Sequence[str],
        t0: float,
        t1: float,
        width: int = 100,
    ) -> str:
        """Render the [t0, t1) window at ``width`` columns."""
        if t1 <= t0 or width < 1:
            raise ValueError("need t1 > t0 and width >= 1")
        dt = (t1 - t0) / width
        lines = [
            f"timeline {t0 * 1e3:.3f} .. {t1 * 1e3:.3f} ms  "
            f"({dt * 1e6:.1f} us/column)"
        ]
        for thread in threads:
            cells = []
            for col in range(width):
                label = self._label_at(thread, t0 + (col + 0.5) * dt)
                if label is None:
                    cells.append(".")
                else:
                    cells.append(self.glyphs.get(label, "?"))
            lines.append(f"{thread[-14:]:>14} |{''.join(cells)}|")
        legend = "  ".join(
            f"{g}={l}" for l, g in sorted(self.glyphs.items(), key=lambda kv: kv[1])
            if any(
                lab == l
                for evs in self._events.values()
                for _, k, lab in evs
                if k == "run"
            )
        )
        lines.append("legend: " + (legend or "(no activity)") + "  .=idle")
        return "\n".join(lines)
