"""Heap viewers: what the tools showed, and what the paper wished for.

§V-B: the VisualVM live-allocated-objects view revealed that ">50% of
our live memory was being used by one type of temporary object", but
"does not provide any information as to which thread or method was
creating these objects".  §V-A: "It would be very informative if there
was a heap viewer that would show the actual data addresses of objects
in Java ... The heap viewers do not show the relative spatial locality
of the objects."

:class:`HeapViewer` offers three views over the ground truth:

* :meth:`live_objects_view` — class histogram only (faithful to 2010
  tooling),
* :meth:`by_thread_view` — the missing thread attribution,
* :meth:`spatial_view` — object addresses and adjacency (needs a
  :class:`~repro.jvm.heap.Heap`), the data-packing verification tool
  the authors could not build.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.jvm.gc import AllocationRecorder, ClassStats
from repro.jvm.heap import Heap


class HeapViewer:
    """Heap inspection over an AllocationRecorder (see module docs)."""

    def __init__(
        self, recorder: AllocationRecorder, heap: Optional[Heap] = None
    ):
        self.recorder = recorder
        self.heap = heap

    # -- the 2010 view ----------------------------------------------------

    def live_objects_view(self) -> List[Tuple[str, int, int]]:
        """(class, count, bytes) sorted by bytes — no thread, no site,
        no addresses.  This is all VisualVM offered."""
        hist = self.recorder.live_histogram()
        return sorted(
            ((cls, st.count, st.bytes) for cls, st in hist.items()),
            key=lambda row: row[2],
            reverse=True,
        )

    def dominant_class(self) -> Tuple[str, float]:
        """(class, fraction of live bytes) of the biggest class."""
        return self.recorder.dominant_class()

    def render(self) -> str:
        """The live-objects table as displayed text."""
        total = max(self.recorder.live_bytes(), 1)
        lines = [f"{'Class':<28} {'Count':>10} {'Bytes':>12} {'%':>6}"]
        for cls, count, nbytes in self.live_objects_view():
            lines.append(
                f"{cls:<28} {count:>10} {nbytes:>12} "
                f"{100.0 * nbytes / total:>5.1f}%"
            )
        return "\n".join(lines)

    # -- the wished-for views ------------------------------------------------

    def by_thread_view(self) -> Dict[Tuple[str, str], ClassStats]:
        """(class, thread) attribution — 'Knowing which thread was using
        what portion of the heap would have provided insight'."""
        return dict(self.recorder.by_thread)

    def spatial_view(self, objects) -> List[Tuple[int, str, int]]:
        """(address, class, size) sorted by address — object placement
        made visible, so packing can be *verified* instead of inferred
        from cache-miss rates."""
        if self.heap is None:
            raise RuntimeError("spatial view requires a Heap")
        return sorted(
            (o.address, o.class_name, o.size) for o in objects
        )

    def adjacency_score(self, objects) -> float:
        """Fraction of consecutive objects that are truly adjacent."""
        if self.heap is None:
            raise RuntimeError("spatial view requires a Heap")
        return self.heap.adjacency_score(list(objects))
