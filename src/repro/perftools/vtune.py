"""VTune models: the thread→core plot (Fig. 2) and HW cache counters.

§V-B used VTune "to plot the thread to core affinity of a workload";
Fig. 2 shows a single worker visiting every core of the quad-core
within a second.  §V-A used VTune's access to the hardware performance
monitoring unit to read mid-level and last-level cache miss rates.

:class:`VTune` renders the residency heat map from the scheduler trace
and reads the cache counters — from the warmth model during timing
simulation, or from a trace-driven :class:`SetAssocCache` for the
data-packing study.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.machine.machine import SimMachine


class VTune:
    """Hardware-assisted sampler attached to a finished simulation."""

    def __init__(self, machine: SimMachine):
        self.machine = machine

    # -- thread-to-core plot (Fig. 2) ------------------------------------

    def residency_matrix(self, threads: Sequence[str]) -> np.ndarray:
        """Seconds each thread executed on each PU (rows x PUs)."""
        trace = self.machine.scheduler.trace
        return trace.residency_matrix(
            list(threads), self.machine.spec.n_pus
        )

    def migrations(self, thread: str) -> int:
        """How many times the thread changed PU."""
        return self.machine.scheduler.trace.migrations.get(thread, 0)

    def cores_visited(self, thread: str) -> int:
        """Distinct physical cores the thread has executed on."""
        trace = self.machine.scheduler.trace
        cores = {
            self.machine.topology.core_of(pu)
            for pu, sec in trace.residency[thread].items()
            if sec > 0
        }
        return len(cores)

    def thread_to_core_plot(self, threads: Sequence[str]) -> str:
        """ASCII version of Fig. 2: one row per thread, one column per
        PU; '#' heavy load, '+' moderate, '.' light, ' ' none."""
        mat = self.residency_matrix(threads)
        total = mat.sum(axis=1, keepdims=True)
        total[total == 0] = 1.0
        frac = mat / total
        out = ["thread/PU " + "".join(f"{p % 10}" for p in range(mat.shape[1]))]
        for name, row in zip(threads, frac):
            cells = []
            for f in row:
                if f >= 0.5:
                    cells.append("#")
                elif f >= 0.15:
                    cells.append("+")
                elif f > 0.0:
                    cells.append(".")
                else:
                    cells.append(" ")
            out.append(f"{name[-9:]:>9} " + "".join(cells))
        return "\n".join(out)

    # -- hardware cache counters (§V-A) -----------------------------------

    def llc_miss_rates(self) -> Dict[int, float]:
        """Byte-level miss fraction per LLC from the warmth model."""
        out = {}
        for llc in self.machine.llc_states:
            total = llc.bytes_hit + llc.bytes_missed
            out[llc.llc_id] = llc.bytes_missed / total if total else 0.0
        return out

    def memory_bandwidth_report(self) -> Dict[int, Dict[str, float]]:
        """Per-socket DRAM traffic (the bandwidth-saturation evidence)."""
        return self.machine.memory.stats()
