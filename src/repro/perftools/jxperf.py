"""JXPerf-style PMU-watchpoint profiler over the synthetic access stream.

"Pinpointing Performance Inefficiencies in Java" (PAPERS.md) showed
that wasteful memory operations — dead stores, silent stores, redundant
loads — can be found with ~5% overhead by PMU address sampling plus the
four x86 debug registers: sample every Nth retired memory access, arm a
hardware watchpoint on the sampled address, and classify the *pair* of
accesses when the watchpoint traps.  This is exactly the tool the
paper's authors lacked in 2010: it attributes wasteful operations to
allocation/usage *sites*, so the ``Vector3`` temp churn of §V-B shows
up as the top-ranked site instead of an anonymous cache-miss rate.

Definitions (as the real tool detects them):

* **dead store** — a store whose next access to the address is another
  store: the value was never read.  Attributed to the first (killed)
  store's site.
* **silent store** — a store writing the value the address already
  holds.  Attributed to the storing site; detected at sample time via
  the trap handler's read-back (:attr:`Access.prev_value`).
* **redundant load** — a load whose previous access to the address was
  a load of the same value.  Attributed to the second load's site.

:func:`exact_classify` is the full-stream ground truth (the simulator
can afford what hardware cannot); :class:`JxPerf` is the modeled tool —
deterministic period sampling, at most ``max_watchpoints`` armed
addresses with FIFO eviction (the 4-debug-register budget), and counts
extrapolated by the sampling period.  The gap between the two is the
tool's *measured* accuracy, one leaderboard row.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.machine.cachestate import LlcState, Region
from repro.perftools.memtrace import Access, AccessStream

#: JXPerf's default sampling period is a prime (avoids lockstep with
#: loop strides); ours is scaled to the synthetic stream's length
DEFAULT_SAMPLE_PERIOD = 97

#: x86 debug registers DR0-DR3
DEBUG_REGISTERS = 4

#: categories a wasteful access falls into
CATEGORIES = ("dead_store", "silent_store", "redundant_load")


@dataclass
class SiteCounts:
    """Wasteful-operation tally of one site."""

    dead_store: float = 0.0
    silent_store: float = 0.0
    redundant_load: float = 0.0

    @property
    def total(self) -> float:
        return self.dead_store + self.silent_store + self.redundant_load

    def as_dict(self) -> Dict[str, float]:
        return {
            "dead_store": self.dead_store,
            "silent_store": self.silent_store,
            "redundant_load": self.redundant_load,
        }


@dataclass
class WastefulReport:
    """Per-site wasteful-operation profile (exact or sampled)."""

    counts: Dict[str, SiteCounts] = field(default_factory=dict)
    #: accesses inspected (stream length for exact, samples for JxPerf)
    accesses: int = 0
    #: site -> Java class (carried through for class-blind comparisons)
    site_classes: Dict[str, str] = field(default_factory=dict)

    def site(self, name: str) -> SiteCounts:
        """The (auto-created) tally of one site."""
        return self.counts.setdefault(name, SiteCounts())

    def total(self, category: str) -> float:
        """Summed count of one category across every site."""
        return sum(getattr(c, category) for c in self.counts.values())

    def ranking(self) -> List[Tuple[str, float, Dict[str, float]]]:
        """Sites by total wasteful operations, worst first."""
        rows = [
            (site, c.total, c.as_dict())
            for site, c in self.counts.items()
            if c.total > 0
        ]
        rows.sort(key=lambda r: (-r[1], r[0]))
        return rows

    def top_site(self) -> Optional[str]:
        """The worst-offending site, or None for a clean profile."""
        rows = self.ranking()
        return rows[0][0] if rows else None

    def distribution(self) -> Dict[Tuple[str, str], float]:
        """Normalized mass per (site, category); empty if nothing found."""
        mass = {
            (site, cat): getattr(c, cat)
            for site, c in self.counts.items()
            for cat in CATEGORIES
            if getattr(c, cat) > 0
        }
        total = sum(mass.values())
        if not total:
            return {}
        return {k: v / total for k, v in mass.items()}

    def render(self) -> str:
        """ASCII per-site table, worst site first."""
        lines = [
            f"{'site':<36} {'dead':>10} {'silent':>10} "
            f"{'red.load':>10} {'total':>10}"
        ]
        for site, total, breakdown in self.ranking():
            lines.append(
                f"{site:<36} {breakdown['dead_store']:>10.0f} "
                f"{breakdown['silent_store']:>10.0f} "
                f"{breakdown['redundant_load']:>10.0f} {total:>10.0f}"
            )
        return "\n".join(lines)


def exact_classify(stream: AccessStream) -> WastefulReport:
    """Full-stream ground-truth classification (every access inspected)."""
    report = WastefulReport(site_classes=dict(stream.site_classes))
    last: Dict[int, Access] = {}
    for ev in stream.events:
        prev = last.get(ev.address)
        if ev.kind == "store":
            if prev is not None and prev.kind == "store":
                report.site(prev.site).dead_store += 1
            if ev.prev_value == ev.value:
                report.site(ev.site).silent_store += 1
        else:
            if (
                prev is not None
                and prev.kind == "load"
                and prev.value == ev.value
            ):
                report.site(ev.site).redundant_load += 1
        last[ev.address] = ev
    report.accesses = len(stream.events)
    return report


class JxPerf:
    """The modeled PMU-sampling + debug-register watchpoint profiler.

    ``sample_period`` counts retired memory accesses between PMU
    samples (deterministic; ``seed`` shifts the phase).  Each sample
    arms a watchpoint on the accessed address; only
    ``max_watchpoints`` addresses can be armed at once (hardware gives
    four debug registers), so arming a fifth silently evicts the
    oldest — the scarcity that makes long-range redundant loads the
    hardest pattern for the real tool to see.  Trap classifications
    are extrapolated by the sampling period.
    """

    def __init__(
        self,
        sample_period: int = DEFAULT_SAMPLE_PERIOD,
        max_watchpoints: int = DEBUG_REGISTERS,
        seed: int = 0,
    ):
        if sample_period < 1:
            raise ValueError(
                f"sample_period must be >= 1: {sample_period}"
            )
        if max_watchpoints < 1:
            raise ValueError(
                f"max_watchpoints must be >= 1: {max_watchpoints}"
            )
        self.sample_period = sample_period
        self.max_watchpoints = max_watchpoints
        self.seed = seed
        self.samples_taken = 0
        self.traps = 0
        self.evictions = 0

    def profile(self, stream: AccessStream) -> WastefulReport:
        """Sampled wasteful-operation estimate (period-extrapolated)."""
        report = WastefulReport(site_classes=dict(stream.site_classes))
        period = self.sample_period
        scale = float(period)
        armed: "OrderedDict[int, Access]" = OrderedDict()
        countdown = (self.seed % period) + 1
        self.samples_taken = self.traps = self.evictions = 0
        for ev in stream.events:
            watch = armed.pop(ev.address, None)
            if watch is not None:
                self.traps += 1
                if watch.kind == "store" and ev.kind == "store":
                    report.site(watch.site).dead_store += scale
                elif (
                    watch.kind == "load"
                    and ev.kind == "load"
                    and watch.value == ev.value
                ):
                    report.site(ev.site).redundant_load += scale
            countdown -= 1
            if countdown == 0:
                countdown = period
                self.samples_taken += 1
                if ev.kind == "store" and ev.prev_value == ev.value:
                    # the trap handler reads the old value back before
                    # the store retires — silent stores classify at the
                    # sample itself, no watchpoint needed
                    report.site(ev.site).silent_store += scale
                armed[ev.address] = ev
                if len(armed) > self.max_watchpoints:
                    armed.popitem(last=False)
                    self.evictions += 1
        report.accesses = self.samples_taken
        return report


def distribution_error(
    displayed: WastefulReport, truth: WastefulReport
) -> float:
    """Total-variation distance between two wasteful-op profiles.

    0 = the displayed (site, category) attribution matches the truth
    exactly; 1 = completely disjoint.  A tool that finds nothing while
    the truth is non-empty scores 1 (maximally wrong), and 0 when both
    are empty (correctly reporting a clean program).
    """
    p = truth.distribution()
    q = displayed.distribution()
    if not p and not q:
        return 0.0
    if not p or not q:
        return 1.0
    keys = set(p) | set(q)
    return 0.5 * sum(abs(p.get(k, 0.0) - q.get(k, 0.0)) for k in keys)


def class_blind_error(truth: WastefulReport) -> float:
    """Error of the best *class-histogram* tool (the 2010 heap viewer).

    VisualVM's live-objects view shows per-class totals with no site or
    thread attribution (§V-B), so the sharpest statement it supports is
    "class C wastes X" — modeled as each class's true mass spread
    uniformly over that class's sites.  The total-variation distance to
    the per-site truth is the attribution information the view loses.
    """
    p = truth.distribution()
    if not p:
        return 0.0
    by_class: Dict[str, List[Tuple[str, str]]] = {}
    sites_of_class: Dict[str, set] = {}
    for site in truth.site_classes:
        sites_of_class.setdefault(
            truth.site_classes[site], set()
        ).add(site)
    class_mass: Dict[str, float] = {}
    for (site, cat), mass in p.items():
        cls = truth.site_classes.get(site, site)
        class_mass[cls] = class_mass.get(cls, 0.0) + mass
        by_class.setdefault(cls, []).append((site, cat))
    q: Dict[Tuple[str, str], float] = {}
    for cls, mass in class_mass.items():
        sites = sorted(sites_of_class.get(cls, {s for s, _ in by_class[cls]}))
        cats = sorted({cat for _, cat in by_class[cls]})
        cells = [(s, c) for s in sites for c in cats]
        for cell in cells:
            q[cell] = q.get(cell, 0.0) + mass / len(cells)
    keys = set(p) | set(q)
    return 0.5 * sum(abs(p.get(k, 0.0) - q.get(k, 0.0)) for k in keys)


def llc_miss_bytes(
    stream: AccessStream,
    capacity_bytes: int,
    *,
    page_bytes: int = 4096,
    access_bytes: int = 8,
) -> Dict[str, float]:
    """Bytes missed in one LLC, split into atom-graph vs temp traffic.

    Replays the access stream page-granular through
    :class:`~repro.machine.cachestate.LlcState`; comparing the
    atom-graph misses of a churn stream against its churn-free twin
    measures the cache pollution the temp objects inflict (§V-B's
    "force out the very data this approach is attempting to keep in
    the caches").
    """
    llc = LlcState(0, capacity_bytes)
    temp_pages = {a // page_bytes for a in stream.temp_addresses}
    regions: Dict[int, Region] = {}
    missed = {"atom": 0.0, "temp": 0.0}
    for ev in stream.events:
        page = ev.address // page_bytes
        region = regions.get(page)
        if region is None:
            region = Region(f"page-{page:x}", page_bytes)
            regions[page] = region
        miss = llc.touch(region, access_bytes)
        missed["temp" if page in temp_pages else "atom"] += miss
    return missed


def pollution_report(
    churn: AccessStream,
    clean: AccessStream,
    capacity_bytes: int,
) -> Dict[str, float]:
    """Extra atom-graph LLC misses attributable to the temp churn."""
    with_churn = llc_miss_bytes(churn, capacity_bytes)
    without = llc_miss_bytes(clean, capacity_bytes)
    return {
        "atom_miss_bytes": with_churn["atom"],
        "atom_miss_bytes_clean": without["atom"],
        "pollution_bytes": max(
            with_churn["atom"] - without["atom"], 0.0
        ),
        "temp_miss_bytes": with_churn["temp"],
    }
