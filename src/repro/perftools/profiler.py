"""Sampling-profiler bias — the Mytkowicz et al. phenomenon (§VI-B).

"Mytkowicz et al. analyzed the accuracy of Java code profilers and
found that the different tools are inconsistent in identifying hot
methods or sections of code.  This is due to sampling the call stack
primarily at yield points in the code and a lack of random sampling."

Two profilers over the same ground-truth execution record:

* :class:`RandomSamplingProfiler` — samples uniformly in time; its hot
  list converges on the true time distribution;
* :class:`YieldPointProfiler` — can only observe a thread at its yield
  points (burst boundaries), so each *execution* of a method counts
  once regardless of its duration — long-running methods are
  under-reported exactly as the cited study found.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.machine.machine import SimMachine


def _execution_intervals(
    machine: SimMachine,
) -> List[Tuple[float, float, str]]:
    """(start, end, label) execution intervals from the scheduler trace."""
    open_runs: Dict[str, Tuple[float, str]] = {}
    intervals: List[Tuple[float, float, str]] = []
    for time, thread, _pu, what in machine.scheduler.trace.events:
        if what.startswith("run"):
            open_runs[thread] = (time, what.partition(":")[2])
        elif what in ("done", "preempt") and thread in open_runs:
            start, label = open_runs.pop(thread)
            if time > start:
                intervals.append((start, time, label))
    return intervals


def true_hot_methods(machine: SimMachine) -> Dict[str, float]:
    """Ground truth: total executed seconds per method label."""
    totals: Dict[str, float] = {}
    for start, end, label in _execution_intervals(machine):
        key = label or "(unlabeled)"
        totals[key] = totals.get(key, 0.0) + (end - start)
    return totals


class RandomSamplingProfiler:
    """Unbiased profiler: samples uniformly random instants."""

    def __init__(self, n_samples: int = 4000, seed: int = 0):
        if n_samples < 1:
            raise ValueError(f"n_samples must be >= 1: {n_samples}")
        self.n_samples = n_samples
        self.rng = np.random.default_rng(seed)

    def profile(self, machine: SimMachine) -> Dict[str, float]:
        """Sampled hot-method fractions (sum to 1 over hits)."""
        intervals = _execution_intervals(machine)
        if not intervals:
            return {}
        starts = np.array([s for s, _, _ in intervals])
        ends = np.array([e for _, e, _ in intervals])
        labels = [l or "(unlabeled)" for _, _, l in intervals]
        times = self.rng.uniform(0.0, ends.max(), self.n_samples)
        counts: Dict[str, int] = {}
        order = np.argsort(starts)
        sorted_starts = starts[order]
        for t in times:
            k = np.searchsorted(sorted_starts, t, side="right") - 1
            if k < 0:
                continue
            idx = order[k]
            if starts[idx] <= t < ends[idx]:
                lab = labels[idx]
                counts[lab] = counts.get(lab, 0) + 1
        total = sum(counts.values())
        return (
            {k: v / total for k, v in counts.items()} if total else {}
        )


class YieldPointProfiler:
    """Yield-point-biased profiler (how JVMTI-era samplers worked).

    The profiler requests a sample at random instants, but the thread
    only *delivers* the sample when it reaches its next yield point —
    the end of the current burst.  Every delivery therefore attributes
    one hit to whichever method was running, making hit counts
    proportional to how often a method executes, not how long.
    """

    def __init__(self, n_samples: int = 4000, seed: int = 0):
        if n_samples < 1:
            raise ValueError(f"n_samples must be >= 1: {n_samples}")
        self.n_samples = n_samples
        self.rng = np.random.default_rng(seed)

    def profile(self, machine: SimMachine) -> Dict[str, float]:
        """Sampled hot-method fractions under yield-point bias."""
        intervals = _execution_intervals(machine)
        if not intervals:
            return {}
        # a sample requested during interval k is delivered at its end,
        # attributing a hit to that interval's method — but a sample
        # requested while *no* burst runs is delivered at the start of
        # the next one.  Either way hits ~ executions, not durations.
        labels = [l or "(unlabeled)" for _, _, l in intervals]
        picks = self.rng.integers(0, len(intervals), self.n_samples)
        counts: Dict[str, int] = {}
        for k in picks:
            lab = labels[int(k)]
            counts[lab] = counts.get(lab, 0) + 1
        total = sum(counts.values())
        return {k: v / total for k, v in counts.items()}


def profiler_disagreement(
    a: Dict[str, float], b: Dict[str, float]
) -> float:
    """Total variation distance between two hot-method distributions."""
    keys = set(a) | set(b)
    return 0.5 * sum(abs(a.get(k, 0.0) - b.get(k, 0.0)) for k in keys)
