"""Thread-state timelines and the samplers that coarsen them.

§IV-B: "VirtualVM has a graphical thread view displaying the state
(running, sleeping, waiting, or blocked by a monitor) of all threads.
However, it was sampling at a rate of one sample per second.  VTune was
able to sample on the order of 5 to 10 milliseconds apart.  However,
the typical work load in MW takes between 80 and 5000 microseconds ...
At the thread state sampling granularity of these tools, we were able
to observe only the most severe imbalance.  This sampling period also
generated 'false positives' ... The tool sampled the thread state
immediately before it changed, but continued to display the sampled
state until the next sample."

:class:`GroundTruthTimeline` reconstructs exact per-thread state
intervals from the scheduler trace; :class:`ThreadStateSampler` then
shows what a tool sampling every ``period`` seconds would display
(sample-and-hold), so the information loss and display artifacts are
directly measurable.
"""

from __future__ import annotations

import enum
from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


class ThreadState(enum.Enum):
    RUNNING = "running"
    READY = "ready"  # runnable, waiting for a core
    WAITING = "waiting"  # parked at a latch/barrier/queue


@dataclass
class StateInterval:
    start: float
    end: float
    state: ThreadState
    #: PU executed on (RUNNING intervals only; None for READY/WAITING) —
    #: lets fault attribution bill straggler windows to slowed cores
    pu: Optional[int] = None


class GroundTruthTimeline:
    """Exact per-thread state history from a SchedulerTrace."""

    def __init__(self, events: Sequence[Tuple[float, str, int, str]]):
        raw: Dict[str, List[Tuple[float, ThreadState, Optional[int]]]] = {}
        for time, thread, pu, what in events:
            if what.startswith("run"):
                state = ThreadState.RUNNING
            elif what == "ready":
                state = ThreadState.READY
            elif what in ("done", "preempt"):
                # preempt is immediately followed by a 'ready' from the
                # re-submit; 'done' means the thread parks
                state = (
                    ThreadState.WAITING
                    if what == "done"
                    else ThreadState.READY
                )
            else:  # migrate and other markers carry no state change
                continue
            raw.setdefault(thread, []).append(
                (time, state, pu if state is ThreadState.RUNNING else None)
            )
        self.intervals: Dict[str, List[StateInterval]] = {}
        self.end_time = max((t for t, *_ in events), default=0.0)
        for thread, points in raw.items():
            iv: List[StateInterval] = []
            for (t0, s0, p0), (t1, _s1, _p1) in zip(points, points[1:]):
                if t1 > t0:
                    iv.append(StateInterval(t0, t1, s0, p0))
            if points:
                last_t, last_s, last_p = points[-1]
                if self.end_time > last_t:
                    iv.append(
                        StateInterval(last_t, self.end_time, last_s, last_p)
                    )
            self.intervals[thread] = iv

    def threads(self) -> List[str]:
        """All thread names seen in the trace."""
        return sorted(self.intervals)

    def state_at(self, thread: str, time: float) -> Optional[ThreadState]:
        """Exact state of a thread at an instant (None = not started)."""
        iv = self.intervals.get(thread, [])
        starts = [i.start for i in iv]
        k = bisect_right(starts, time) - 1
        if k < 0 or k >= len(iv):
            return None
        if iv[k].start <= time < iv[k].end:
            return iv[k].state
        return iv[k].state if time >= iv[k].end and k == len(iv) - 1 else None

    def time_in_state(self, thread: str, state: ThreadState) -> float:
        """Total seconds the thread truly spent in one state."""
        return sum(
            i.end - i.start
            for i in self.intervals.get(thread, [])
            if i.state == state
        )

    def state_changes(self, thread: str) -> int:
        """Number of true state transitions (interval count)."""
        return len(self.intervals.get(thread, []))


@dataclass
class SampledTimeline:
    """What the tool displays: one held state per sample tick."""

    period: float
    sample_times: np.ndarray
    #: thread -> list of sampled states (None = thread not yet seen)
    samples: Dict[str, List[Optional[ThreadState]]]

    def displayed_time_in_state(self, thread: str, state: ThreadState) -> float:
        """Display semantics: each sampled state is shown for the whole
        following period (sample-and-hold)."""
        return self.period * sum(
            1 for s in self.samples.get(thread, []) if s == state
        )

    def displayed_changes(self, thread: str) -> int:
        """State transitions visible in the sampled display."""
        seq = [s for s in self.samples.get(thread, []) if s is not None]
        return sum(1 for a, b in zip(seq, seq[1:]) if a != b)


#: one simulated microsecond, the unit conversions below pivot on
MICROSECOND = 1e-6


class ThreadStateSampler:
    """Sample a ground-truth timeline the way VisualVM/VTune did.

    ``period`` is in **simulated seconds** (the unit every timeline and
    trace timestamp in this repo uses): ``period=1.0`` reproduces
    VisualVM's 1 s thread view, ``0.005``–``0.010`` reproduces VTune's
    5–10 ms sampling.  The paper's work quanta are 80–5000 µs, so
    µs-denominated periods are common in analysis code — use
    :meth:`from_micros` / :attr:`period_us` instead of hand-converting.

    Invalid periods (zero, negative, NaN, infinity) are rejected here,
    at construction — previously a NaN period slipped through the
    ``<= 0`` check and only exploded mid-run inside ``np.arange``.
    """

    def __init__(self, period: float):
        period = float(period)
        if not np.isfinite(period) or period <= 0:
            raise ValueError(
                f"period must be a finite positive number of simulated "
                f"seconds: {period!r}"
            )
        self.period = period

    @classmethod
    def from_micros(cls, period_us: float) -> "ThreadStateSampler":
        """Build a sampler from a period in simulated microseconds."""
        return cls(float(period_us) * MICROSECOND)

    @property
    def period_us(self) -> float:
        """The sampling period in simulated microseconds."""
        return self.period / MICROSECOND

    def sample(self, truth: GroundTruthTimeline) -> SampledTimeline:
        """Take periodic samples of every thread's state."""
        end = truth.end_time
        ticks = np.arange(0.0, end, self.period)
        samples: Dict[str, List[Optional[ThreadState]]] = {}
        for thread in truth.threads():
            samples[thread] = [
                truth.state_at(thread, float(t)) for t in ticks
            ]
        return SampledTimeline(
            period=self.period, sample_times=ticks, samples=samples
        )

    def imbalance_visibility(
        self,
        truth: GroundTruthTimeline,
        threads: Sequence[str],
    ) -> Dict[str, float]:
        """Compare true vs displayed running-time spread across threads.

        Returns ``true_spread``, ``displayed_spread`` (max-min running
        seconds), and ``missed_changes`` — the fraction of real state
        transitions invisible at this sampling period.
        """
        sampled = self.sample(truth)
        true_run = [
            truth.time_in_state(t, ThreadState.RUNNING) for t in threads
        ]
        disp_run = [
            sampled.displayed_time_in_state(t, ThreadState.RUNNING)
            for t in threads
        ]
        true_changes = sum(truth.state_changes(t) for t in threads)
        disp_changes = sum(sampled.displayed_changes(t) for t in threads)
        missed = (
            1.0 - disp_changes / true_changes if true_changes else 0.0
        )
        return {
            "true_spread": max(true_run) - min(true_run) if true_run else 0.0,
            "displayed_spread": (
                max(disp_run) - min(disp_run) if disp_run else 0.0
            ),
            "missed_changes": missed,
        }
