"""The ``nanocar`` benchmark.

"The nanocar test ... emphasizes bonds.  About half its atoms are
bonded together to form a 'nanoscale car' with the other half making up
an immovable platform of gold on which the car 'drives.'  Because
fixed-location atoms making up the platform do not interact with one
another, this simulation has a lower effective atom count and requires
far fewer Coulombic and LJ force computations than the other examples."
(§III)

Construction (989 atoms, 2277 bond terms, matching Table I):

* 500 fixed Au atoms — the platform (one close-packed layer),
* 4 wheels x 60 carbon atoms — fullerene-like spherical shells,
* 240 carbon atoms — a 12 x 20 chassis plate,
* 9 carbon atoms — four axle struts joining wheels to chassis.

Radial bonds come from the structure; angular and torsional terms are
enumerated from the bond graph (deterministically truncated) so that
radial + angular + torsional == 2277 exactly.  All equilibrium
parameters are taken from the as-built geometry, so the car starts
relaxed and stays assembled.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.md.elements import ELEMENTS
from repro.md.forces import (
    AngularBondForce,
    LennardJonesForce,
    RadialBondForce,
    TorsionalBondForce,
)
from repro.md.system import AtomSystem
from repro.workloads.base import Workload
from repro.workloads.generators import (
    angle_triples,
    bond_graph,
    cubic_lattice,
    fibonacci_sphere,
    grid_bonds,
    nearest_neighbor_bonds,
    torsion_quads,
)

TOTAL_BONDS = 2277
N_TORSIONS = 400


def _measure_angles(pos: np.ndarray, triples: np.ndarray) -> np.ndarray:
    u = pos[triples[:, 0]] - pos[triples[:, 1]]
    v = pos[triples[:, 2]] - pos[triples[:, 1]]
    cos_t = np.einsum("ij,ij->i", u, v) / (
        np.linalg.norm(u, axis=1) * np.linalg.norm(v, axis=1)
    )
    return np.arccos(np.clip(cos_t, -1.0, 1.0))


def _measure_dihedrals(pos: np.ndarray, quads: np.ndarray) -> np.ndarray:
    b1 = pos[quads[:, 1]] - pos[quads[:, 0]]
    b2 = pos[quads[:, 2]] - pos[quads[:, 1]]
    b3 = pos[quads[:, 3]] - pos[quads[:, 2]]
    n1 = np.cross(b1, b2)
    n2 = np.cross(b2, b3)
    lb2 = np.linalg.norm(b2, axis=1)
    x = np.einsum("ij,ij->i", n1, n2)
    y = np.einsum("ij,ij->i", np.cross(n1, n2), b2) / np.where(
        lb2 > 1e-12, lb2, 1.0
    )
    return np.arctan2(y, x)


def build_nanocar(
    seed: int = 0, drive_speed: float = 0.004
) -> Workload:
    """989 atoms: 500 fixed Au platform + 489-atom bonded carbon car."""
    rng = np.random.default_rng(seed)
    bond_len = 2.0 ** (1.0 / 6.0) * ELEMENTS["C"].sigma  # relaxed C-C
    au_spacing = 2.0 ** (1.0 / 6.0) * ELEMENTS["Au"].sigma
    margin = 10.0

    # ---- platform: 25 x 20 single layer, immovable ----
    platform = cubic_lattice((25, 20, 1), au_spacing, origin=(margin, margin, 5.0))
    assert len(platform) == 500

    # ---- car geometry ----
    wheel_r = bond_len / 0.46  # Fibonacci-sphere nn spacing ~0.46 r
    wheel_z = 5.0 + au_spacing + wheel_r  # rolling just above the gold
    chassis_z = wheel_z + wheel_r + bond_len
    plat_lo = platform.min(axis=0)
    plat_hi = platform.max(axis=0)
    cx = (plat_lo[0] + plat_hi[0]) / 2
    cy = (plat_lo[1] + plat_hi[1]) / 2

    chassis_shape = (12, 20)
    chassis = cubic_lattice(
        (chassis_shape[0], chassis_shape[1], 1),
        bond_len,
        origin=(
            cx - (chassis_shape[0] - 1) * bond_len / 2,
            cy - (chassis_shape[1] - 1) * bond_len / 2,
            chassis_z,
        ),
    )
    assert len(chassis) == 240

    wheel_centers = []
    inset = wheel_r * 0.4
    ch_lo = chassis.min(axis=0)
    ch_hi = chassis.max(axis=0)
    for wx in (ch_lo[0] + inset, ch_hi[0] - inset):
        for wy in (ch_lo[1] + inset, ch_hi[1] - inset):
            wheel_centers.append((wx, wy, wheel_z))
    wheels = [fibonacci_sphere(60, wheel_r, c) for c in wheel_centers]

    # ---- assemble car atom array: wheels, chassis, struts ----
    car_parts: List[np.ndarray] = list(wheels) + [chassis]
    wheel_offsets = [60 * i for i in range(4)]
    chassis_offset = 240
    strut_sizes = [3, 2, 2, 2]  # 9 strut atoms total
    bonds: List[Tuple[int, int]] = []

    # wheel shell bonds
    for w, wheel in enumerate(wheels):
        for a, b in nearest_neighbor_bonds(wheel, k=3):
            bonds.append((wheel_offsets[w] + a, wheel_offsets[w] + b))
    # chassis plate bonds
    for a, b in grid_bonds(chassis_shape):
        bonds.append((chassis_offset + a, chassis_offset + b))

    # struts: chains from each wheel's top atom to the nearest chassis atom
    strut_atoms: List[np.ndarray] = []
    next_idx = chassis_offset + 240
    for w, wheel in enumerate(wheels):
        top_local = int(np.argmax(wheel[:, 2]))
        top_pos = wheel[top_local]
        d = np.linalg.norm(chassis - top_pos, axis=1)
        anchor_local = int(np.argmin(d))
        anchor_pos = chassis[anchor_local]
        k = strut_sizes[w]
        ts = np.linspace(0.0, 1.0, k + 2)[1:-1]
        pts = top_pos[None, :] + ts[:, None] * (anchor_pos - top_pos)[None, :]
        strut_atoms.append(pts)
        chain = [wheel_offsets[w] + top_local] + [
            next_idx + i for i in range(k)
        ] + [chassis_offset + anchor_local]
        bonds.extend(zip(chain[:-1], chain[1:]))
        next_idx += k
    car_parts.extend(strut_atoms)
    car = np.vstack(car_parts)
    assert len(car) == 489, len(car)

    radial = np.array(sorted(set(map(tuple, bonds))), dtype=np.int64)
    n_radial = len(radial)

    # angular + torsional terms fill up to the Table I total
    graph = bond_graph(len(car), radial)
    all_quads = torsion_quads(graph)
    # drop nearly-collinear paths (chassis rows): their dihedral is
    # numerically degenerate and physically torsion-free
    b1 = car[all_quads[:, 1]] - car[all_quads[:, 0]]
    b2 = car[all_quads[:, 2]] - car[all_quads[:, 1]]
    b3 = car[all_quads[:, 3]] - car[all_quads[:, 2]]
    n1 = np.cross(b1, b2)
    n2 = np.cross(b2, b3)
    good = (np.einsum("ij,ij->i", n1, n1) > 1.0) & (
        np.einsum("ij,ij->i", n2, n2) > 1.0
    )
    good_quads = all_quads[good]
    idx = (np.arange(N_TORSIONS) * len(good_quads)) // N_TORSIONS
    quads = good_quads[idx]
    n_angles = TOTAL_BONDS - n_radial - len(quads)
    if n_angles <= 0:
        raise RuntimeError(
            f"bond budget exceeded: {n_radial} radial + {len(quads)} torsions"
        )
    triples = angle_triples(graph, limit=n_angles)
    if len(triples) < n_angles:
        raise RuntimeError(
            f"not enough angle candidates: {len(triples)} < {n_angles}"
        )

    # ---- build the system: platform first, then the car ----
    system = AtomSystem(
        box=np.array(
            [
                plat_hi[0] + margin,
                plat_hi[1] + margin,
                chassis_z + margin + 4.0,
            ]
        )
    )
    system.add_atoms("Au", platform, movable=False)
    car_idx = system.add_atoms("C", car + 0.0)
    system.velocities[car_idx, 0] = drive_speed  # the car "drives" in +x
    system.velocities[car_idx] += rng.normal(0.0, 2e-4, (len(car_idx), 3))

    # Interleave car and platform atoms through the index space, as the
    # published MW model file does: under the 1/N block partition every
    # thread then owns a similar mix of bonded car atoms and inert
    # platform atoms, which is what lets nanocar reach ~3x in Fig. 1.
    n_plat, n_car = len(platform), len(car)
    keys = np.empty(n_plat + n_car)
    keys[:n_plat] = (np.arange(n_plat) + 0.5) / n_plat
    keys[n_plat:] = (np.arange(n_car) + 0.25) / n_car
    order = np.argsort(keys, kind="stable")
    inverse = system.permute(order)

    shift = n_plat
    radial_g = inverse[radial + shift]
    triples_g = inverse[triples + shift]
    quads_g = inverse[quads + shift]
    pos = system.positions
    r0 = np.linalg.norm(pos[radial_g[:, 0]] - pos[radial_g[:, 1]], axis=1)
    theta0 = _measure_angles(pos, triples_g)
    phi_init = _measure_dihedrals(pos, quads_g)
    periodicity = 3.0
    phi0 = periodicity * phi_init - np.pi  # start at the torsional minimum

    forces = [
        LennardJonesForce(exclusions=radial_g),
        RadialBondForce(radial_g, k=15.0, r0=r0),
        AngularBondForce(triples_g, k=3.0, theta0=theta0),
        TorsionalBondForce(
            quads_g, v=0.08, periodicity=periodicity, phi0=phi0
        ),
    ]
    n_bonds = n_radial + len(triples) + len(quads)
    assert n_bonds == TOTAL_BONDS, n_bonds
    assert system.n_atoms == 989

    return Workload(
        name="nanocar",
        system=system,
        forces=forces,
        dt_fs=1.0,
        description=(
            "489-atom bonded carbon nanocar driving on an immovable "
            "500-atom gold platform; bond forces dominate"
        ),
        n_bonds=n_bonds,
    )
