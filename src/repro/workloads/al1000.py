"""The ``Al-1000`` benchmark.

"The last test case, Al-1000, is a densely packed stationary block of
999 aluminum atoms hit by a single, fast-moving gold atom.  This case
has a large number of collisions and requires frequent neighbor list
updates." (§III)

Lennard-Jones only — the irregular, memory-bound profile whose poor
scaling (1.42x on four cores) triggered the paper's investigation.
"""

from __future__ import annotations

import numpy as np

from repro.md.elements import ELEMENTS
from repro.md.forces import LennardJonesForce
from repro.md.system import AtomSystem
from repro.workloads.base import Workload
from repro.workloads.generators import cubic_lattice


def build_al1000(
    seed: int = 0, impact_speed: float = 0.08
) -> Workload:
    """999 Al atoms in a block + 1 fast Au projectile."""
    rng = np.random.default_rng(seed)
    # near-equilibrium LJ spacing for Al: 2^(1/6) * sigma
    spacing = 2.0 ** (1.0 / 6.0) * ELEMENTS["Al"].sigma
    margin = 14.0
    block = cubic_lattice((10, 10, 10), spacing, origin=(margin,) * 3)
    block = block[:-1]  # drop one corner atom: 999
    block += rng.normal(0.0, 0.01, block.shape)
    center = block.mean(axis=0)
    box = block.max(axis=0) + margin

    system = AtomSystem(box)
    system.add_atoms("Al", block)
    # the projectile approaches along +x toward the block's center
    start = np.array([2.0, center[1], center[2]])
    system.add_atoms(
        "Au", [start], velocities=[[impact_speed, 0.0, 0.0]]
    )

    assert system.n_atoms == 1000
    return Workload(
        name="Al-1000",
        system=system,
        forces=[LennardJonesForce()],
        dt_fs=1.0,
        # tight skin: collisions force frequent rebuilds, as in the paper
        skin=0.6,
        description=(
            "densely packed stationary block of 999 aluminum atoms hit "
            "by a single fast-moving gold atom; many collisions, "
            "frequent neighbor list updates"
        ),
        n_bonds=0,
    )
