"""Structure generators: lattices, packings, and molecular graphs."""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import networkx as nx
import numpy as np


def cubic_lattice(
    shape: Tuple[int, int, int], spacing: float, origin=(0.0, 0.0, 0.0)
) -> np.ndarray:
    """Simple cubic lattice of ``prod(shape)`` sites."""
    if min(shape) < 1 or spacing <= 0:
        raise ValueError("shape must be >= 1 per axis, spacing positive")
    grid = np.stack(
        np.meshgrid(*[np.arange(s) for s in shape], indexing="ij"), axis=-1
    ).reshape(-1, 3)
    return np.asarray(origin, dtype=float) + grid * spacing


def rocksalt_lattice(
    cells: int, spacing: float, origin=(0.0, 0.0, 0.0)
) -> Tuple[np.ndarray, np.ndarray]:
    """NaCl structure: positions and alternating +1/-1 charges."""
    if cells < 1 or spacing <= 0:
        raise ValueError("cells must be >= 1, spacing positive")
    n = 2 * cells
    coords = np.stack(
        np.meshgrid(*([np.arange(n)] * 3), indexing="ij"), axis=-1
    ).reshape(-1, 3)
    positions = np.asarray(origin, dtype=float) + coords * spacing
    charges = np.where(coords.sum(axis=1) % 2 == 0, 1.0, -1.0)
    return positions, charges


def random_packing(
    n: int,
    lo: np.ndarray,
    hi: np.ndarray,
    min_dist: float,
    rng: np.random.Generator,
    max_tries: int = 20000,
) -> np.ndarray:
    """Dart-throwing placement with a minimum separation."""
    lo = np.asarray(lo, dtype=float)
    hi = np.asarray(hi, dtype=float)
    if np.any(hi <= lo):
        raise ValueError("hi must exceed lo on every axis")
    placed: List[np.ndarray] = []
    tries = 0
    while len(placed) < n:
        tries += 1
        if tries > max_tries:
            raise RuntimeError(
                f"could not place {n} atoms with min_dist={min_dist} "
                f"(placed {len(placed)})"
            )
        cand = rng.uniform(lo, hi)
        if placed:
            arr = np.array(placed)
            if np.min(np.linalg.norm(arr - cand, axis=1)) < min_dist:
                continue
        placed.append(cand)
    return np.array(placed)


def fibonacci_sphere(n: int, radius: float, center) -> np.ndarray:
    """Near-uniform points on a sphere (fullerene-ish wheel shell)."""
    if n < 1 or radius <= 0:
        raise ValueError("n must be >= 1, radius positive")
    k = np.arange(n, dtype=float) + 0.5
    phi = np.arccos(1.0 - 2.0 * k / n)
    theta = math.pi * (1.0 + 5.0**0.5) * k
    pts = np.stack(
        [
            np.cos(theta) * np.sin(phi),
            np.sin(theta) * np.sin(phi),
            np.cos(phi),
        ],
        axis=1,
    )
    return np.asarray(center, dtype=float) + radius * pts


def nearest_neighbor_bonds(
    positions: np.ndarray, k: int = 3
) -> np.ndarray:
    """Bond each point to its k nearest neighbors (deduplicated,
    (M, 2) with i < j) — builds wheel shells and irregular frames."""
    n = len(positions)
    if n < 2:
        return np.zeros((0, 2), dtype=np.int64)
    d2 = np.sum(
        (positions[:, None, :] - positions[None, :, :]) ** 2, axis=-1
    )
    np.fill_diagonal(d2, np.inf)
    kk = min(k, n - 1)
    nearest = np.argsort(d2, axis=1)[:, :kk]
    edges = set()
    for i in range(n):
        for j in nearest[i]:
            edges.add((min(i, int(j)), max(i, int(j))))
    return np.array(sorted(edges), dtype=np.int64)


def grid_bonds(shape: Tuple[int, int]) -> np.ndarray:
    """Ladder/grid bonds for a 2-D lattice laid out row-major."""
    rows, cols = shape
    edges = []
    for r in range(rows):
        for c in range(cols):
            i = r * cols + c
            if c + 1 < cols:
                edges.append((i, i + 1))
            if r + 1 < rows:
                edges.append((i, i + cols))
    return np.array(edges, dtype=np.int64)


def bond_graph(n_atoms: int, bonds: np.ndarray) -> nx.Graph:
    """The molecule's bond topology as a networkx graph."""
    g = nx.Graph()
    g.add_nodes_from(range(n_atoms))
    g.add_edges_from(map(tuple, bonds))
    return g


def _stride_sample(rows: list, width: int, limit: Optional[int]) -> np.ndarray:
    """Deterministically keep ``limit`` rows spread uniformly over the
    candidate list (truncating from the front would concentrate the
    surviving terms on low-index atoms and skew the work profile)."""
    if not rows:
        return np.zeros((0, width), dtype=np.int64)
    arr = np.array(rows, dtype=np.int64)
    if limit is None or limit >= len(arr):
        return arr
    idx = (np.arange(limit) * len(arr)) // limit
    return arr[idx]


def angle_triples(graph: nx.Graph, limit: Optional[int] = None) -> np.ndarray:
    """(a, vertex, c) triples for every pair of bonds sharing a vertex,
    deterministic; ``limit`` keeps a uniform subsample."""
    triples = []
    for b in sorted(graph.nodes):
        nbrs = sorted(graph.neighbors(b))
        for x in range(len(nbrs)):
            for y in range(x + 1, len(nbrs)):
                triples.append((nbrs[x], b, nbrs[y]))
    return _stride_sample(triples, 3, limit)


def torsion_quads(graph: nx.Graph, limit: Optional[int] = None) -> np.ndarray:
    """(a, b, c, d) simple 3-edge paths, deterministic; ``limit`` keeps
    a uniform subsample."""
    quads = []
    for b, c in sorted(graph.edges):
        for a in sorted(graph.neighbors(b)):
            if a in (b, c):
                continue
            for d in sorted(graph.neighbors(c)):
                if d in (a, b, c):
                    continue
                quads.append((a, b, c, d))
    return _stride_sample(quads, 4, limit)
