"""Parametric workload families for scaling studies.

The paper's complexity claims — linked cells keep neighbor finding
O(N) (§II-B) while all-pairs Coulomb is O(N²) — need workloads whose
size is a free parameter at constant density.  These builders provide
them: an Al-1000-style LJ block and a salt-style ionic system, both
scaled by atom count.
"""

from __future__ import annotations

import numpy as np

from repro.md.elements import ELEMENTS
from repro.md.forces import CoulombForce, LennardJonesForce
from repro.md.system import AtomSystem
from repro.workloads.base import Workload
from repro.workloads.generators import cubic_lattice


def _cube_side(n_atoms: int) -> int:
    side = round(n_atoms ** (1.0 / 3.0))
    while side**3 < n_atoms:
        side += 1
    return side


def build_lj_block(
    n_atoms: int, seed: int = 0, temperature_k: float = 150.0
) -> Workload:
    """An Al block of ``n_atoms`` at constant (near-equilibrium) density."""
    if n_atoms < 2:
        raise ValueError(f"need at least 2 atoms, got {n_atoms}")
    rng = np.random.default_rng(seed)
    spacing = 2.0 ** (1.0 / 6.0) * ELEMENTS["Al"].sigma
    side = _cube_side(n_atoms)
    margin = 10.0
    lattice = cubic_lattice((side, side, side), spacing, origin=(margin,) * 3)
    positions = lattice[:n_atoms] + rng.normal(0.0, 0.01, (n_atoms, 3))
    box = lattice.max(axis=0) + margin
    system = AtomSystem(box)
    system.add_atoms("Al", positions)
    system.set_thermal_velocities(temperature_k, rng)
    return Workload(
        name=f"lj-{n_atoms}",
        system=system,
        forces=[LennardJonesForce()],
        dt_fs=1.0,
        description=f"{n_atoms}-atom LJ block at crystal density",
    )


def build_lj_gas(
    n_atoms: int, seed: int = 0, temperature_k: float = 150.0
) -> Workload:
    """A dilute Al gas: the overhead-bound sweep regime.

    Lattice spacing of 2.2 sigma keeps only the six nearest neighbors
    inside the 2.5 sigma force cutoff — a sparse, irregular pair graph
    whose per-step array work is tiny, so scalar stepping is dominated
    by fixed interpreter/numpy-call overhead.  That is the regime where
    batching many runs into one ensemble pays most, which makes this
    the reference workload for the ensemble throughput gate
    (``scripts/bench_ensemble.py``).
    """
    if n_atoms < 2:
        raise ValueError(f"need at least 2 atoms, got {n_atoms}")
    rng = np.random.default_rng(seed)
    spacing = 2.2 * ELEMENTS["Al"].sigma
    side = _cube_side(n_atoms)
    margin = 10.0
    lattice = cubic_lattice((side, side, side), spacing, origin=(margin,) * 3)
    positions = lattice[:n_atoms] + rng.normal(0.0, 0.01, (n_atoms, 3))
    box = lattice.max(axis=0) + margin
    system = AtomSystem(box)
    system.add_atoms("Al", positions)
    system.set_thermal_velocities(temperature_k, rng)
    return Workload(
        name=f"gas-{n_atoms}",
        system=system,
        forces=[LennardJonesForce()],
        dt_fs=1.0,
        description=f"{n_atoms}-atom dilute LJ gas (sparse pair graph)",
    )


def build_ionic_gas(
    n_atoms: int, seed: int = 0, temperature_k: float = 400.0
) -> Workload:
    """Alternating +1/-1 ions on a cubic grid at constant density."""
    if n_atoms < 2 or n_atoms % 2:
        raise ValueError(f"need an even atom count >= 2, got {n_atoms}")
    rng = np.random.default_rng(seed)
    spacing = 4.2
    side = _cube_side(n_atoms)
    margin = 8.0
    lattice = cubic_lattice((side, side, side), spacing, origin=(margin,) * 3)
    positions = lattice[:n_atoms] + rng.normal(0.0, 0.05, (n_atoms, 3))
    coords = np.rint((positions - margin) / spacing).astype(int)
    charges = np.where(coords.sum(axis=1) % 2 == 0, 1.0, -1.0)
    # enforce overall neutrality by flipping surplus ions at the tail
    surplus = int(charges.sum()) // 2
    if surplus != 0:
        sign = 1.0 if surplus > 0 else -1.0
        idx = np.nonzero(charges == sign)[0][-abs(surplus):]
        charges[idx] = -sign
    box = lattice.max(axis=0) + margin
    system = AtomSystem(box)
    na = charges > 0
    system.add_atoms("Na", positions[na], charges=1.0)
    system.add_atoms("Cl", positions[~na], charges=-1.0)
    site = np.concatenate([np.nonzero(na)[0], np.nonzero(~na)[0]])
    system.permute(np.argsort(site, kind="stable"))
    system.set_thermal_velocities(temperature_k, rng)
    return Workload(
        name=f"ionic-{n_atoms}",
        system=system,
        forces=[LennardJonesForce(), CoulombForce()],
        dt_fs=2.0,
        description=f"{n_atoms}-ion gas, all charged",
    )
