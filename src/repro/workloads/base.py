"""Workload bundles and the Table I characteristics report."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence


from repro.md.engine import MDEngine
from repro.md.forces.base import Force
from repro.md.system import AtomSystem

#: display names for the dominant-computation column of Table I
_DOMINANT_LABEL = {
    "lj": "Lennard-Jones",
    "coulomb": "Ionic",
    "ewald": "Ionic",
    "bonds": "Bonds",
}


@dataclass
class Workload:
    """One benchmark: system + forces + integration parameters."""

    name: str
    system: AtomSystem
    forces: List[Force]
    dt_fs: float
    description: str = ""
    skin: float = 0.8
    #: bond terms of all kinds (Table I's '# of Bonds')
    n_bonds: int = 0

    def make_engine(self, **overrides) -> MDEngine:
        """A fresh engine on a *copy* of the system (workloads are
        reusable across repeated runs)."""
        kwargs = dict(dt_fs=self.dt_fs, skin=self.skin)
        kwargs.update(overrides)
        return MDEngine(self.system.copy(), self.forces, **kwargs)

    def dominant_computation(self) -> str:
        """Measure which force family consumes the most flops in one
        timestep of this workload."""
        engine = self.make_engine()
        report = engine.step()
        flops: Dict[str, float] = {"lj": 0.0, "coulomb": 0.0, "bonds": 0.0}
        for name, res in report.force_results.items():
            if name.startswith("bond"):
                flops["bonds"] += res.flops
            elif name in ("coulomb", "ewald"):
                flops["coulomb"] += res.flops
            elif name == "lj":
                flops["lj"] += res.flops
        winner = max(flops, key=flops.get)
        if flops[winner] == 0.0:
            return "None"
        return _DOMINANT_LABEL[
            "bonds" if winner == "bonds" else
            ("coulomb" if winner == "coulomb" else "lj")
        ]

    def characteristics(self) -> Dict[str, object]:
        """This workload's row of Table I."""
        return {
            "Benchmark": self.name,
            "# of Atoms": self.system.n_atoms,
            "# of Charged Atoms": int(len(self.system.charged)),
            "# of Bonds": self.n_bonds,
            "Dominant Computation Type": self.dominant_computation(),
        }


def table1_rows(workloads: Sequence[Workload]) -> List[Dict[str, object]]:
    """Assemble Table I for a set of workloads."""
    return [w.characteristics() for w in workloads]
