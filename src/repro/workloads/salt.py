"""The ``salt`` benchmark.

"The salt case is a simulation containing 400 sodium ions and 400
chlorine ions.  There are no bonds in this simulation, but every atom
is a charged ion, interacting with each other via Coulombic and
potentially LJ forces." (§III)

Built as a thermally agitated rock-salt slab: 800 alternating ions on a
cubic sublattice, randomized velocities.  All-pairs Coulomb over 800
charges (319,600 pairs/step) dominates the arithmetic — the
compute-bound, well-scaling profile of Fig. 1.
"""

from __future__ import annotations

import numpy as np

from repro.md.forces import CoulombForce, LennardJonesForce
from repro.md.system import AtomSystem
from repro.workloads.base import Workload


def build_salt(
    seed: int = 0, temperature_k: float = 400.0, spacing: float = 4.2
) -> Workload:
    """400 Na+ + 400 Cl- ions, Coulomb-dominated."""
    rng = np.random.default_rng(seed)
    # a 10x10x8 alternating grid = 800 sites
    n = 10
    coords = np.stack(
        np.meshgrid(
            np.arange(n), np.arange(n), np.arange(8), indexing="ij"
        ),
        axis=-1,
    ).reshape(-1, 3)
    charges = np.where(coords.sum(axis=1) % 2 == 0, 1.0, -1.0)
    margin = 8.0
    positions = margin + coords * spacing
    positions += rng.normal(0.0, 0.05, positions.shape)
    box = positions.max(axis=0) + margin

    system = AtomSystem(box)
    na = charges > 0
    system.add_atoms("Na", positions[na], charges=1.0)
    system.add_atoms("Cl", positions[~na], charges=-1.0)
    # restore lattice-site index order so Na/Cl alternate through the
    # atom array (as the MW model file lists them); pair ownership and
    # hence per-thread work stays uniform under the 1/N block partition
    site_index = np.concatenate(
        [np.nonzero(na)[0], np.nonzero(~na)[0]]
    )
    system.permute(np.argsort(site_index, kind="stable"))
    system.set_thermal_velocities(temperature_k, rng)

    assert system.n_atoms == 800
    assert len(system.charged) == 800
    return Workload(
        name="salt",
        system=system,
        forces=[LennardJonesForce(), CoulombForce()],
        dt_fs=2.0,
        description=(
            "400 sodium + 400 chlorine ions; every atom charged; "
            "Coulombic all-pairs interactions dominate"
        ),
        n_bonds=0,
    )
