"""The paper's three benchmarks (Table I) and structure generators.

==========  ========  ================  =========  =====================
Benchmark   # Atoms   # Charged Atoms   # Bonds    Dominant Computation
==========  ========  ================  =========  =====================
nanocar     989       0                 2277       Bonds
salt        800       800               0          Ionic
Al-1000     1000      0                 0          Lennard-Jones
==========  ========  ================  =========  =====================

Each builder returns a :class:`~repro.workloads.base.Workload` bundling
the atom system, force objects, timestep, and the Table I
characteristics (the dominant type is *measured* from the actual flop
distribution, not hard-coded).
"""

from repro.workloads.al1000 import build_al1000
from repro.workloads.base import Workload, table1_rows
from repro.workloads.nanocar import build_nanocar
from repro.workloads.salt import build_salt
from repro.workloads.scaling import (
    build_ionic_gas,
    build_lj_block,
    build_lj_gas,
)

#: the paper's Table I benchmarks — the default set for CLI commands
PAPER_WORKLOADS = ("nanocar", "salt", "Al-1000")


def _scaled(builder, n_atoms):
    def build(seed: int = 0):
        return builder(n_atoms, seed=seed)

    build.__name__ = f"build_{builder.__name__}_{n_atoms}"
    return build


BUILDERS = {
    "nanocar": build_nanocar,
    "salt": build_salt,
    "Al-1000": build_al1000,
    # scaled generator workloads (ensemble/throughput studies): small
    # enough that per-run numpy overhead dominates, which is exactly
    # the regime the batched ensemble engine targets
    "gas-8": _scaled(build_lj_gas, 8),
    "gas-16": _scaled(build_lj_gas, 16),
    "gas-64": _scaled(build_lj_gas, 64),
    "lj-32": _scaled(build_lj_block, 32),
    "lj-64": _scaled(build_lj_block, 64),
    "lj-256": _scaled(build_lj_block, 256),
    "ionic-64": _scaled(build_ionic_gas, 64),
}


def _fold(name: str) -> str:
    return "".join(c for c in name.lower() if c.isalnum())


def resolve_workload(name: str) -> str:
    """Canonical ``BUILDERS`` key for a user-supplied workload name.

    Lookup is case- and punctuation-insensitive, so ``al1000``,
    ``AL-1000`` and ``al_1000`` all resolve to ``"Al-1000"``.  Raises
    ``KeyError`` listing the valid names otherwise.
    """
    if name in BUILDERS:
        return name
    folded = _fold(name)
    for canonical in BUILDERS:
        if _fold(canonical) == folded:
            return canonical
    raise KeyError(
        f"unknown workload {name!r}; choose from {sorted(BUILDERS)}"
    )


__all__ = [
    "BUILDERS",
    "PAPER_WORKLOADS",
    "Workload",
    "build_al1000",
    "build_ionic_gas",
    "build_lj_block",
    "build_lj_gas",
    "build_nanocar",
    "build_salt",
    "resolve_workload",
    "table1_rows",
]
