# Convenience targets for the reproduction repository.

PYTHON ?= python

.PHONY: install test trace-smoke bench-smoke chaos-smoke perf-smoke cache-smoke report-smoke leaderboard-smoke resilience-smoke ensemble-smoke tune-smoke bench experiments examples clean

install:
	pip install -e .

test: trace-smoke bench-smoke chaos-smoke perf-smoke cache-smoke report-smoke leaderboard-smoke resilience-smoke ensemble-smoke tune-smoke
	PYTHONPATH=src $(PYTHON) -m pytest tests/

# end-to-end observability check: produce a ground-truth trace and
# validate the Chrome trace-event JSON against the minimal schema
trace-smoke:
	PYTHONPATH=src $(PYTHON) -m repro trace salt --steps 5 \
		--out benchmarks/out/trace-smoke
	$(PYTHON) scripts/check_trace.py benchmarks/out/trace-smoke/trace.json \
		--min-spans 20

# end-to-end attribution check: regenerate the speedup-loss bench,
# produce the Al-1000 flamegraph, and validate both (buckets must
# conserve the gap; LJ work inflation must dominate Al-1000)
bench-smoke:
	PYTHONPATH=src $(PYTHON) scripts/bench_attribution.py \
		--out BENCH_attribution.json
	PYTHONPATH=src $(PYTHON) -m repro attribute --workload al1000 \
		--threads 4 --steps 4 --out benchmarks/out/attr-smoke
	$(PYTHON) scripts/check_bench.py BENCH_attribution.json \
		--expect-lj-dominant \
		--folded benchmarks/out/attr-smoke/flamegraph.folded

# end-to-end robustness check: sweep the default fault-plan battery
# (worker crash, straggler, preemption storm, task loss, lock stall,
# GC amplification) across all three workloads and validate that every
# run completed deterministically with its MD invariants intact
chaos-smoke:
	PYTHONPATH=src $(PYTHON) -m repro chaos --steps 2 \
		--out benchmarks/out/chaos-smoke
	$(PYTHON) scripts/check_chaos.py benchmarks/out/chaos-smoke/chaos.json

# wall-clock throughput gate: the committed BENCH_throughput.json must
# record the >=1.5x DES hot-path speedup vs its pre-optimization
# baseline AND a telemetry-on-vs-off sweep overhead within the <=5%
# budget; a quick live sweep must still produce a valid artifact
# (shape-checked only, overhead sweep skipped: live ratios on shared
# CI runners are too noisy to gate, the recorded artifact is the
# number of record)
perf-smoke:
	$(PYTHON) scripts/check_throughput.py BENCH_throughput.json \
		--max-overhead 0.05
	PYTHONPATH=src $(PYTHON) scripts/bench_throughput.py --quick \
		--skip-overhead \
		--baseline BENCH_throughput.json \
		--out benchmarks/out/throughput-smoke.json
	$(PYTHON) scripts/check_throughput.py \
		benchmarks/out/throughput-smoke.json \
		--min-speedup 0 --max-overhead -1

# run-cache effectiveness gate: regenerate BENCH_runcache.json (cold
# sweep into a fresh store, identical warm sweep, sampled byte-identity
# verify) and require warm-over-cold >= 5x with hit rate >= 0.9
cache-smoke:
	PYTHONPATH=src $(PYTHON) scripts/bench_runcache.py \
		--out BENCH_runcache.json
	$(PYTHON) scripts/check_runcache.py BENCH_runcache.json

# end-to-end runtime-telemetry check: run the attribution sweep with a
# telemetry run active (12 workload x thread configs, warm after
# bench-smoke), render it with `repro report`, and validate that
# report.json is schema-valid and report.html is fully self-contained
report-smoke:
	rm -rf benchmarks/out/report-smoke
	PYTHONPATH=src $(PYTHON) scripts/bench_attribution.py \
		--telemetry benchmarks/out/report-smoke \
		--out benchmarks/out/report-smoke/BENCH_attribution.json
	PYTHONPATH=src $(PYTHON) -m repro report benchmarks/out/report-smoke
	$(PYTHON) scripts/check_report.py benchmarks/out/report-smoke

# tool-accuracy leaderboard gate: score every modeled profiler against
# ground truth over the 3x3 workload x machine grid (cold + warm cached
# sweeps), render the telemetry run, and require >= 8 ranked tools,
# JXPerf's top wasteful site on the Vector3 temp churn, a measurable
# timer-placement distortion gap, and a warm hit rate >= 0.9
leaderboard-smoke:
	rm -rf benchmarks/out/leaderboard-smoke
	PYTHONPATH=src $(PYTHON) scripts/bench_toolerror.py \
		--telemetry benchmarks/out/leaderboard-smoke \
		--out BENCH_toolerror.json
	PYTHONPATH=src $(PYTHON) -m repro report benchmarks/out/leaderboard-smoke
	$(PYTHON) scripts/check_toolerror.py BENCH_toolerror.json

# crash-safety gate: real-process chaos against the sweep orchestrator
# (SIGKILLed pool workers, ENOSPC'd + truncated cache writes, a hung
# shard killed on timeout, a mid-campaign SIGKILL of a journaled
# `repro sweep` subprocess).  Requires byte-identical recovery, zero
# re-execution of journaled-complete specs on --resume, and CLI exit
# codes that distinguish partial success (3) from full success (0)
resilience-smoke:
	PYTHONPATH=src $(PYTHON) scripts/bench_resilience.py \
		--out BENCH_resilience.json
	$(PYTHON) scripts/check_resilience.py BENCH_resilience.json

# vectorized-ensemble gate: advance 100 seeded captures in lockstep
# through the batched engine and require >= 10x execution-phase
# aggregate events/s over the scalar path, byte-identical per-run
# traces, byte-equal cache artifacts on both sweep paths, and a full
# hit on resweep (the replay-batching break-even is recorded, ungated)
ensemble-smoke:
	PYTHONPATH=src $(PYTHON) scripts/bench_ensemble.py \
		--out BENCH_ensemble.json
	$(PYTHON) scripts/check_ensemble.py BENCH_ensemble.json

# autotuner recovery gate: run the attribution-driven autotuner on
# Al-1000 at 32 threads on the simulated 32-core machine (the paper's
# worst scaling case), render the telemetry run with the tuner
# search-trajectory section, and require the tuned config to strictly
# beat the fixed-queue baseline's speedup with a strictly lower
# latch-idle share and exactly-conserved buckets (incl. steal_overhead)
tune-smoke:
	rm -rf benchmarks/out/tune-smoke
	PYTHONPATH=src $(PYTHON) scripts/bench_autotune.py \
		--telemetry benchmarks/out/tune-smoke \
		--out BENCH_autotune.json \
		--config-out benchmarks/out/tune-smoke/winning_config.json
	PYTHONPATH=src $(PYTHON) -m repro report benchmarks/out/tune-smoke
	$(PYTHON) scripts/check_autotune.py BENCH_autotune.json

bench:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/ --benchmark-only

# regenerate every paper artifact into benchmarks/out/
experiments: bench
	@ls benchmarks/out/

examples:
	PYTHONPATH=src $(PYTHON) examples/quickstart.py
	PYTHONPATH=src $(PYTHON) examples/salt_melt.py
	PYTHONPATH=src $(PYTHON) examples/nanocar_drive.py
	PYTHONPATH=src $(PYTHON) examples/ewald_ionic_crystal.py
	PYTHONPATH=src $(PYTHON) examples/custom_model.py
	PYTHONPATH=src $(PYTHON) examples/perf_study.py

clean:
	rm -rf .pytest_cache .hypothesis benchmarks/out
	find . -name __pycache__ -type d -exec rm -rf {} +
