# Convenience targets for the reproduction repository.

PYTHON ?= python

.PHONY: install test bench experiments examples clean

install:
	pip install -e .

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# regenerate every paper artifact into benchmarks/out/
experiments: bench
	@ls benchmarks/out/

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/salt_melt.py
	$(PYTHON) examples/nanocar_drive.py
	$(PYTHON) examples/ewald_ionic_crystal.py
	$(PYTHON) examples/custom_model.py
	$(PYTHON) examples/perf_study.py

clean:
	rm -rf .pytest_cache .hypothesis benchmarks/out
	find . -name __pycache__ -type d -exec rm -rf {} +
